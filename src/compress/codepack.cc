#include "compress/codepack.h"

#include <algorithm>
#include <unordered_map>

#include "compress/bitstream.h"
#include "program/program.h"
#include "support/bitops.h"
#include "support/logging.h"

namespace rtd::compress {

namespace {

using Params = CodePackParams;

/**
 * Frequency-rank the halfword values of one stream. Ties are broken by
 * value for determinism. Only the first dictEntries ranks are indexable;
 * the rest are escaped as literals.
 */
std::vector<uint16_t>
rankValues(const std::vector<uint16_t> &halves)
{
    std::unordered_map<uint16_t, uint32_t> freq;
    freq.reserve(halves.size());
    for (uint16_t h : halves)
        ++freq[h];
    std::vector<std::pair<uint16_t, uint32_t>> ranked(freq.begin(),
                                                      freq.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (ranked.size() > Params::dictEntries)
        ranked.resize(Params::dictEntries);
    std::vector<uint16_t> dict;
    dict.reserve(ranked.size());
    for (const auto &[value, count] : ranked)
        dict.push_back(value);
    return dict;
}

/** value -> rank lookup built from a ranked dictionary. */
std::unordered_map<uint16_t, uint32_t>
rankMap(const std::vector<uint16_t> &dict)
{
    std::unordered_map<uint16_t, uint32_t> map;
    map.reserve(dict.size());
    for (size_t i = 0; i < dict.size(); ++i)
        map.emplace(dict[i], static_cast<uint32_t>(i));
    return map;
}

/** Encode one halfword against its rank map. */
void
encodeHalf(BitWriter &bw, uint16_t value,
           const std::unordered_map<uint16_t, uint32_t> &ranks)
{
    auto it = ranks.find(value);
    if (it == ranks.end()) {
        bw.put(0b11, 2);
        bw.put(value, 16);
        return;
    }
    uint32_t rank = it->second;
    if (rank == 0) {
        bw.put(0b00, 2);
    } else if (rank < Params::class2First) {
        bw.put(0b01, 2);
        bw.put(rank - Params::class1First, 4);
    } else if (rank < Params::class3First) {
        bw.put(0b100, 3);
        bw.put(rank - Params::class2First, 6);
    } else {
        bw.put(0b101, 3);
        bw.put(rank - Params::class3First, 8);
    }
}

/** Decode one halfword (reference decoder). */
uint16_t
decodeHalf(BitReader &br, const std::vector<uint16_t> &dict)
{
    auto lookup = [&dict](uint32_t rank) -> uint16_t {
        RTDC_ASSERT(rank < dict.size(), "codepack rank %u outside dict",
                    rank);
        return dict[rank];
    };
    uint32_t tag = br.get(2);
    switch (tag) {
      case 0b00:
        return lookup(0);
      case 0b01:
        return lookup(Params::class1First + br.get(4));
      case 0b10:
        if (br.get(1) == 0)
            return lookup(Params::class2First + br.get(6));
        return lookup(Params::class3First + br.get(8));
      default:
        return static_cast<uint16_t>(br.get(16));
    }
}

} // namespace

uint32_t
CodePackCompressed::groupOffset(size_t g) const
{
    size_t pair = g / 2;
    RTDC_ASSERT(pair < mapTable.size(), "group %zu outside map table", g);
    uint32_t entry = mapTable[pair];
    uint32_t offset = entry & 0x00ffffffu;
    if (g & 1)
        offset += entry >> 24;
    return offset;
}

uint32_t
CodePackCompressed::compressedBytes() const
{
    return static_cast<uint32_t>(stream.size() + mapTable.size() * 4 +
                                 highDict.size() * 2 + lowDict.size() * 2);
}

CodePackCompressed
CodePack::compress(const std::vector<uint32_t> &words)
{
    std::vector<uint32_t> padded = words;
    while (padded.size() % Params::groupInsns != 0)
        padded.push_back(isa::nopWord());

    std::vector<uint16_t> highs, lows;
    highs.reserve(padded.size());
    lows.reserve(padded.size());
    for (uint32_t w : padded) {
        highs.push_back(static_cast<uint16_t>(w >> 16));
        lows.push_back(static_cast<uint16_t>(w));
    }

    CodePackCompressed out;
    out.numInsns = padded.size();
    out.highDict = rankValues(highs);
    out.lowDict = rankValues(lows);
    auto high_ranks = rankMap(out.highDict);
    auto low_ranks = rankMap(out.lowDict);

    BitWriter bw;
    size_t groups = padded.size() / Params::groupInsns;
    out.mapTable.reserve((groups + 1) / 2);
    uint32_t even_offset = 0;
    for (size_t g = 0; g < groups; ++g) {
        auto offset = static_cast<uint32_t>(bw.sizeBytes());
        if ((g & 1) == 0) {
            RTDC_ASSERT(offset < (1u << 24),
                        "codeword stream exceeds 16 MB");
            even_offset = offset;
            out.mapTable.push_back(offset);
        } else {
            uint32_t delta = offset - even_offset;
            RTDC_ASSERT(delta < 256, "group longer than 255 bytes");
            out.mapTable.back() |= delta << 24;
        }
        for (unsigned i = 0; i < Params::groupInsns; ++i) {
            size_t idx = g * Params::groupInsns + i;
            encodeHalf(bw, highs[idx], high_ranks);
            encodeHalf(bw, lows[idx], low_ranks);
        }
        bw.alignByte();
    }
    out.stream = bw.take();
    return out;
}

void
CodePack::decompressGroup(const CodePackCompressed &compressed,
                          size_t group_idx, uint32_t out[16])
{
    size_t offset = compressed.groupOffset(group_idx);
    BitReader br(compressed.stream.data() + offset,
                 compressed.stream.size() - offset);
    for (unsigned i = 0; i < Params::groupInsns; ++i) {
        uint16_t hi = decodeHalf(br, compressed.highDict);
        uint16_t lo = decodeHalf(br, compressed.lowDict);
        out[i] = static_cast<uint32_t>(hi) << 16 | lo;
    }
    RTDC_ASSERT(br.ok(), "codepack stream overrun in group %zu",
                group_idx);
}

namespace {

/** decodeHalf with rank/overrun checking instead of asserts. */
bool
tryDecodeHalf(BitReader &br, const std::vector<uint16_t> &dict,
              uint16_t &out, std::string *error)
{
    auto lookup = [&](uint32_t rank) {
        if (rank >= dict.size()) {
            if (error) {
                *error = "codepack rank " + std::to_string(rank) +
                         " outside dictionary of " +
                         std::to_string(dict.size());
            }
            return false;
        }
        out = dict[rank];
        return true;
    };
    uint32_t tag = br.get(2);
    bool ok;
    switch (tag) {
      case 0b00:
        ok = lookup(0);
        break;
      case 0b01:
        ok = lookup(Params::class1First + br.get(4));
        break;
      case 0b10:
        if (br.get(1) == 0)
            ok = lookup(Params::class2First + br.get(6));
        else
            ok = lookup(Params::class3First + br.get(8));
        break;
      default:
        out = static_cast<uint16_t>(br.get(16));
        ok = true;
        break;
    }
    if (ok && br.overrun()) {
        if (error)
            *error = "codepack stream truncated mid-codeword";
        return false;
    }
    return ok;
}

} // namespace

bool
CodePack::tryDecompressGroup(const CodePackCompressed &compressed,
                             size_t group_idx, uint32_t out[16],
                             std::string *error)
{
    size_t pair = group_idx / 2;
    if (pair >= compressed.mapTable.size()) {
        if (error) {
            *error = "group " + std::to_string(group_idx) +
                     " outside map table";
        }
        return false;
    }
    uint32_t entry = compressed.mapTable[pair];
    uint32_t offset = entry & 0x00ffffffu;
    if (group_idx & 1)
        offset += entry >> 24;
    if (offset > compressed.stream.size()) {
        if (error) {
            *error = "group offset " + std::to_string(offset) +
                     " outside stream of " +
                     std::to_string(compressed.stream.size()) + " bytes";
        }
        return false;
    }
    BitReader br(compressed.stream.data() + offset,
                 compressed.stream.size() - offset);
    for (unsigned i = 0; i < Params::groupInsns; ++i) {
        uint16_t hi, lo;
        if (!tryDecodeHalf(br, compressed.highDict, hi, error) ||
            !tryDecodeHalf(br, compressed.lowDict, lo, error)) {
            return false;
        }
        out[i] = static_cast<uint32_t>(hi) << 16 | lo;
    }
    return true;
}

std::vector<uint32_t>
CodePack::decompress(const CodePackCompressed &compressed)
{
    std::vector<uint32_t> words(compressed.numInsns);
    size_t groups = compressed.numInsns / Params::groupInsns;
    for (size_t g = 0; g < groups; ++g)
        decompressGroup(compressed, g, words.data() + g * Params::groupInsns);
    return words;
}

CompressedImage
CodePack::buildImage(const std::vector<uint32_t> &words,
                     uint32_t decomp_base)
{
    CodePackCompressed cp = compress(words);

    CompressedImage image;
    image.scheme = Scheme::CodePack;

    uint32_t cursor = prog::layout::compressedBase;
    auto add_segment = [&](const char *name, std::vector<uint8_t> bytes,
                           uint32_t align) {
        cursor = static_cast<uint32_t>(alignUp(cursor, align));
        CompressedSegment seg;
        seg.name = name;
        seg.base = cursor;
        seg.bytes = std::move(bytes);
        cursor += static_cast<uint32_t>(seg.bytes.size());
        image.segments.push_back(std::move(seg));
        return image.segments.back().base;
    };

    auto halves_bytes = [](const std::vector<uint16_t> &halves) {
        std::vector<uint8_t> bytes(halves.size() * 2);
        for (size_t i = 0; i < halves.size(); ++i) {
            bytes[i * 2] = static_cast<uint8_t>(halves[i]);
            bytes[i * 2 + 1] = static_cast<uint8_t>(halves[i] >> 8);
        }
        return bytes;
    };
    std::vector<uint8_t> map_bytes(cp.mapTable.size() * 4);
    for (size_t i = 0; i < cp.mapTable.size(); ++i) {
        uint32_t v = cp.mapTable[i];
        map_bytes[i * 4] = static_cast<uint8_t>(v);
        map_bytes[i * 4 + 1] = static_cast<uint8_t>(v >> 8);
        map_bytes[i * 4 + 2] = static_cast<uint8_t>(v >> 16);
        map_bytes[i * 4 + 3] = static_cast<uint8_t>(v >> 24);
    }

    uint32_t stream_base = add_segment(".codewords", cp.stream, 8);
    uint32_t map_base = add_segment(".map", std::move(map_bytes), 4);
    uint32_t high_base =
        add_segment(".highdict", halves_bytes(cp.highDict), 4);
    uint32_t low_base = add_segment(".lowdict", halves_bytes(cp.lowDict), 4);

    image.c0[isa::C0DecompBase] = decomp_base;
    image.c0[isa::C0IndexBase] = stream_base;
    image.c0[isa::C0MapBase] = map_base;
    image.c0[isa::C0HighDictBase] = high_base;
    image.c0[isa::C0LowDictBase] = low_base;
    return image;
}

} // namespace rtd::compress
