#include "compress/lzrw1.h"

#include <algorithm>
#include <cstring>

#include "support/logging.h"

namespace rtd::compress {

namespace {

/** Williams' 3-byte hash. */
inline uint32_t
hash3(const uint8_t *p)
{
    return ((40543u * ((static_cast<uint32_t>(p[0]) << 8 ^
                        static_cast<uint32_t>(p[1]) << 4) ^ p[2])) >> 4) &
           0xfffu;
}

} // namespace

std::vector<uint8_t>
Lzrw1::compress(const std::vector<uint8_t> &src)
{
    std::vector<uint8_t> out;
    out.reserve(src.size());

    // Hash table of most recent position of each 3-byte prefix hash.
    std::vector<int64_t> table(1u << hashBits, -1);

    size_t pos = 0;
    const size_t n = src.size();
    size_t control_pos = 0;  // byte offset of the pending control word
    unsigned control_bits = 0;
    uint16_t control = 0;

    auto open_group = [&]() {
        control_pos = out.size();
        out.push_back(0);
        out.push_back(0);
        control = 0;
        control_bits = 0;
    };
    auto close_group = [&]() {
        out[control_pos] = static_cast<uint8_t>(control);
        out[control_pos + 1] = static_cast<uint8_t>(control >> 8);
    };

    open_group();
    while (pos < n) {
        if (control_bits == 16) {
            close_group();
            open_group();
        }

        bool copied = false;
        if (pos + minMatch <= n && pos + 2 < n) {
            uint32_t h = hash3(src.data() + pos);
            int64_t cand = table[h];
            table[h] = static_cast<int64_t>(pos);
            if (cand >= 0) {
                size_t offset = pos - static_cast<size_t>(cand);
                if (offset >= 1 && offset <= maxOffset) {
                    size_t limit = std::min<size_t>(maxMatch, n - pos);
                    size_t len = 0;
                    const uint8_t *a = src.data() + cand;
                    const uint8_t *b = src.data() + pos;
                    while (len < limit && a[len] == b[len])
                        ++len;
                    if (len >= minMatch) {
                        out.push_back(static_cast<uint8_t>(
                            ((len - minMatch) << 4) | (offset >> 8)));
                        out.push_back(static_cast<uint8_t>(offset));
                        control = static_cast<uint16_t>(
                            control | (1u << control_bits));
                        pos += len;
                        copied = true;
                    }
                }
            }
        }
        if (!copied) {
            out.push_back(src[pos]);
            ++pos;
        }
        ++control_bits;
    }
    close_group();
    return out;
}

std::vector<uint8_t>
Lzrw1::decompress(const std::vector<uint8_t> &src, size_t original_size)
{
    std::vector<uint8_t> out;
    out.reserve(original_size);
    size_t pos = 0;
    while (out.size() < original_size) {
        RTDC_ASSERT(pos + 2 <= src.size(), "lzrw1: truncated control word");
        uint16_t control = static_cast<uint16_t>(src[pos]) |
                           static_cast<uint16_t>(src[pos + 1]) << 8;
        pos += 2;
        for (unsigned bit = 0;
             bit < 16 && out.size() < original_size; ++bit) {
            if (control & (1u << bit)) {
                RTDC_ASSERT(pos + 2 <= src.size(),
                            "lzrw1: truncated copy item");
                unsigned len = (src[pos] >> 4) + minMatch;
                unsigned offset =
                    (static_cast<unsigned>(src[pos] & 0x0f) << 8) |
                    src[pos + 1];
                pos += 2;
                RTDC_ASSERT(offset >= 1 && offset <= out.size(),
                            "lzrw1: bad copy offset %u at output %zu",
                            offset, out.size());
                for (unsigned i = 0; i < len; ++i)
                    out.push_back(out[out.size() - offset]);
            } else {
                RTDC_ASSERT(pos < src.size(), "lzrw1: truncated literal");
                out.push_back(src[pos]);
                ++pos;
            }
        }
    }
    RTDC_ASSERT(out.size() == original_size,
                "lzrw1: output overrun (%zu != %zu)", out.size(),
                original_size);
    return out;
}

} // namespace rtd::compress
