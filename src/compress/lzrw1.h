/**
 * @file
 * LZRW1 compression ([Williams91]).
 *
 * Used exactly as in the paper: compressing the whole .text section as
 * one unit to obtain a lower bound for procedure-based LZRW1 compression
 * (the Kirovski et al. comparison column of Table 2). It is not used on
 * the simulated decompression path.
 *
 * Format (Williams' fast LZ77 variant): items are grouped 16 to a
 * control word; a control bit of 0 marks a literal byte, 1 marks a copy
 * item of two bytes holding a 12-bit offset (1..4095) and a 4-bit
 * length-3 field (lengths 3..18). Matches are found with a 4096-entry
 * hash table over 3-byte prefixes.
 */

#ifndef RTDC_COMPRESS_LZRW1_H
#define RTDC_COMPRESS_LZRW1_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rtd::compress {

/** LZRW1 compressor / decompressor. */
class Lzrw1
{
  public:
    /** Compress @p src; the output does not record the original size. */
    static std::vector<uint8_t> compress(const std::vector<uint8_t> &src);

    /**
     * Decompress @p src into exactly @p original_size bytes.
     * Panics on a malformed stream.
     */
    static std::vector<uint8_t> decompress(const std::vector<uint8_t> &src,
                                           size_t original_size);

  private:
    static constexpr unsigned hashBits = 12;
    static constexpr unsigned maxOffset = 4095;
    static constexpr unsigned minMatch = 3;
    static constexpr unsigned maxMatch = 18;
};

} // namespace rtd::compress

#endif // RTDC_COMPRESS_LZRW1_H
