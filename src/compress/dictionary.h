/**
 * @file
 * Dictionary compression (paper section 3.1, [Lefurgy98]).
 *
 * Every unique 32-bit instruction in the compressed region is placed in a
 * dictionary; each instruction is replaced by a 16-bit index. Because
 * both the native instructions and the codewords have fixed sizes, the
 * compressed address of a native address is a pure calculation —
 *
 *     index_addr = index_base + ((native_addr - decomp_base) >> 1)
 *
 * — and no mapping table is needed, which is the key performance
 * advantage over CodePack.
 */

#ifndef RTDC_COMPRESS_DICTIONARY_H
#define RTDC_COMPRESS_DICTIONARY_H

#include <cstdint>
#include <vector>

#include "compress/compressed_image.h"

namespace rtd::compress {

/** Result of dictionary-compressing an instruction stream. */
struct DictionaryCompressed
{
    std::vector<uint16_t> indices;     ///< one per instruction
    std::vector<uint32_t> dictionary;  ///< unique instruction words

    /** Compressed payload bytes: 2 per index + 4 per dictionary entry. */
    uint32_t
    compressedBytes() const
    {
        return static_cast<uint32_t>(indices.size()) * 2 +
               static_cast<uint32_t>(dictionary.size()) * 4;
    }
};

/**
 * Dictionary compressor.
 *
 * The 16-bit index limits the dictionary to 64K unique instructions
 * (paper section 3.1); compress() reports failure beyond that so the
 * caller can fall back to selective compression.
 */
class DictionaryCompressor
{
  public:
    /**
     * Compress an instruction stream.
     * @param words the compressed-region instructions
     * @return the compressed form
     * @throws SimError when the stream has more than 64K unique
     *         instructions — a structured error the caller (and a sweep
     *         harness job) can surface without killing the process; fall
     *         back to selective compression.
     */
    static DictionaryCompressed compress(
        const std::vector<uint32_t> &words);

    /** Reference (C++) decompressor, used by round-trip tests. */
    static std::vector<uint32_t> decompress(
        const DictionaryCompressed &compressed);

    /**
     * Build the memory image: .dictionary and .indices segments at
     * layout::compressedBase, plus the c0 registers of Figure 2.
     *
     * @param words       compressed-region instruction stream
     * @param decomp_base base VA of the decompressed-code region
     */
    static CompressedImage buildImage(const std::vector<uint32_t> &words,
                                      uint32_t decomp_base);
};

} // namespace rtd::compress

#endif // RTDC_COMPRESS_DICTIONARY_H
