/**
 * @file
 * Optional CRC-32 integrity metadata for compressed images.
 *
 * When a deployment must tolerate flash/DRAM corruption of the
 * compressed program (DESIGN.md section 12), the compressor also emits
 * one CRC-32 per decompression unit — a cache line for the dictionary
 * and Huffman schemes, a 64-byte group for CodePack — computed over the
 * *original* instruction words. After a software line fill, the CPU
 * checks the reconstructed unit against its CRC and raises a
 * machine-check fault on mismatch, which is what turns a flipped bit in
 * any compressed structure (stream, dictionaries, mapping tables) into
 * a detected, recoverable event instead of silent mis-execution.
 *
 * The table itself is part of the compressed payload (a ".crc" segment,
 * counted in compressedBytes()) and is also a legitimate fault-injection
 * site: a corrupted CRC entry makes a good line look bad, which the
 * retry/halt policy handles like any other integrity failure.
 */

#ifndef RTDC_COMPRESS_INTEGRITY_H
#define RTDC_COMPRESS_INTEGRITY_H

#include <cstdint>
#include <vector>

#include "compress/compressed_image.h"

namespace rtd::compress {

/**
 * Per-unit CRC-32s over @p words (as little-endian bytes), one per
 * @p unit_bytes of decompressed text; the final unit may be partial.
 */
std::vector<uint32_t> computeUnitCrcs(const std::vector<uint32_t> &words,
                                      uint32_t unit_bytes);

/**
 * Attach integrity metadata to a built image: fills crcUnitBytes /
 * unitCrcs and appends the ".crc" segment after the existing segments.
 */
void attachIntegrity(CompressedImage &image,
                     const std::vector<uint32_t> &words,
                     uint32_t unit_bytes);

/**
 * Re-derive unitCrcs from the ".crc" segment bytes. Used after fault
 * injection so a corrupted CRC table is corrupted consistently in both
 * its in-memory and metadata forms. No-op when the segment is absent.
 */
void syncCrcsFromSegment(CompressedImage &image);

} // namespace rtd::compress

#endif // RTDC_COMPRESS_INTEGRITY_H
