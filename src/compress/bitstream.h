/**
 * @file
 * MSB-first bit stream reader/writer used by the CodePack codec.
 *
 * Bit order matches the software decompressor's refill sequence
 * (`buf |= byte << (24 - n)`): the most significant bit of each byte is
 * consumed first.
 */

#ifndef RTDC_COMPRESS_BITSTREAM_H
#define RTDC_COMPRESS_BITSTREAM_H

#include <cstdint>
#include <vector>

#include "support/logging.h"

namespace rtd::compress {

/** Append-only MSB-first bit writer. */
class BitWriter
{
  public:
    /** Append the low @p width bits of @p value, MSB first. */
    void
    put(uint32_t value, unsigned width)
    {
        RTDC_ASSERT(width <= 32, "BitWriter::put width %u", width);
        for (unsigned i = width; i > 0; --i) {
            unsigned bit = (value >> (i - 1)) & 1u;
            if (bitPos_ == 0)
                bytes_.push_back(0);
            bytes_.back() = static_cast<uint8_t>(
                bytes_.back() | (bit << (7 - bitPos_)));
            bitPos_ = (bitPos_ + 1) & 7;
        }
    }

    /** Pad with zero bits to the next byte boundary. */
    void
    alignByte()
    {
        bitPos_ = 0;
    }

    /** Total bytes emitted so far (including a partial final byte). */
    size_t sizeBytes() const { return bytes_.size(); }

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take() { bitPos_ = 0; return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
    unsigned bitPos_ = 0;
};

/**
 * MSB-first bit reader over a byte buffer.
 *
 * Reading past the end of the stream is a checked, reportable condition,
 * not UB: out-of-range bits read as zero and set a sticky overrun flag
 * the caller inspects with ok()/overrun(). Truncated or corrupted
 * streams (the fault-injection subsystem produces both) therefore
 * decode to *something* deterministic and flag the damage instead of
 * crashing the process.
 */
class BitReader
{
  public:
    BitReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    /** Read @p width bits, MSB first (zeros once past end-of-stream). */
    uint32_t
    get(unsigned width)
    {
        RTDC_ASSERT(width <= 32, "BitReader::get width %u", width);
        uint32_t value = 0;
        for (unsigned i = 0; i < width; ++i) {
            size_t byte = pos_ >> 3;
            unsigned bit = 0;
            if (byte < size_)
                bit = (data_[byte] >> (7 - (pos_ & 7))) & 1u;
            else
                overrun_ = true;
            value = (value << 1) | bit;
            ++pos_;
        }
        return value;
    }

    /** Skip to the next byte boundary. */
    void
    alignByte()
    {
        pos_ = (pos_ + 7) & ~static_cast<size_t>(7);
    }

    /** Position one past the last consumed bit. */
    size_t bitPos() const { return pos_; }

    /** True once any read ran past the end of the stream. */
    bool overrun() const { return overrun_; }
    /** No overrun has happened. */
    bool ok() const { return !overrun_; }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool overrun_ = false;
};

} // namespace rtd::compress

#endif // RTDC_COMPRESS_BITSTREAM_H
