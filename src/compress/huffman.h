/**
 * @file
 * Byte-granularity Huffman line compression, modeled on the Compressed
 * Code RISC Processor ([Wolfe92], the first system in the paper's
 * related work): instruction-cache lines are Huffman-coded
 * independently and located through a line address table (CCRP's LAT).
 *
 * Wolfe & Chanin decompressed in hardware; here the same format is
 * decoded by a *software* handler (src/runtime/huffman_handler.cc) —
 * demonstrating the paper's core pitch that software decompression
 * decouples the algorithm from the silicon. Canonical codes keep the
 * decode tables tiny (a count per code length plus the symbol
 * permutation), which is what makes a bit-serial software decoder
 * practical.
 */

#ifndef RTDC_COMPRESS_HUFFMAN_H
#define RTDC_COMPRESS_HUFFMAN_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "compress/compressed_image.h"

namespace rtd::compress {

/** A canonical Huffman code over bytes, length-limited to 15 bits. */
struct HuffmanCode
{
    static constexpr unsigned maxLen = 15;

    std::array<uint8_t, 256> length{};   ///< code length per symbol (0 = unused)
    std::array<uint16_t, 256> code{};    ///< canonical codeword per symbol
    /** Number of codes of each length (index 1..maxLen). */
    std::array<uint16_t, maxLen + 1> countOfLen{};
    /** Symbols sorted by (length, value) — the canonical permutation. */
    std::vector<uint8_t> symbols;

    /**
     * Build a length-limited canonical code from byte frequencies.
     * Symbols with zero frequency get no code.
     */
    static HuffmanCode build(const std::array<uint64_t, 256> &freq);

    /** Average code length weighted by @p freq, in bits. */
    double averageBits(const std::array<uint64_t, 256> &freq) const;
};

/** A Huffman-line-compressed instruction stream. */
struct HuffmanCompressed
{
    HuffmanCode code;
    std::vector<uint8_t> stream;     ///< per-line codeword runs
    /**
     * Line address table, packed one 32-bit entry per *pair* of lines
     * (bits [23:0] even-line byte offset, [31:24] odd-line delta), like
     * the CodePack index table.
     */
    std::vector<uint32_t> lat;
    uint32_t lineBytes = 32;
    size_t numLines = 0;

    uint32_t lineOffset(size_t line) const;

    /** Payload bytes: stream + LAT + decode tables. */
    uint32_t compressedBytes() const;
};

/** Huffman line compressor / reference decompressor. */
class HuffmanLine
{
  public:
    /** Compress @p words as independent lines of @p line_bytes. */
    static HuffmanCompressed compress(const std::vector<uint32_t> &words,
                                      uint32_t line_bytes = 32);

    /** Decode one line into line_bytes bytes (reference decoder).
     *  Asserts on corrupt input (use tryDecompressLine for untrusted
     *  data). */
    static void decompressLine(const HuffmanCompressed &compressed,
                               size_t line, uint8_t *out);

    /**
     * Hardened reference decode of one line for untrusted/corrupted
     * input: bounds-checks the LAT entry, the stream offset, the code
     * length against maxLen, the symbol-permutation index, and stream
     * truncation. Returns false (with a diagnostic in @p error when
     * non-null) instead of asserting; never reads out of bounds.
     */
    static bool tryDecompressLine(const HuffmanCompressed &compressed,
                                  size_t line, uint8_t *out,
                                  std::string *error = nullptr);

    /** Round-trip the whole stream (reference decoder). */
    static std::vector<uint32_t> decompress(
        const HuffmanCompressed &compressed);

    /**
     * Build the memory image: .huffstream, .hufflat and .hufftab
     * segments plus the c0 registers the Huffman handler reads.
     * The decode-table segment layout is:
     *   bytes [0..15]   countOfLen[1..16) as bytes
     *   bytes [16..271] canonical symbol permutation (256 entries)
     */
    static CompressedImage buildImage(const std::vector<uint32_t> &words,
                                      uint32_t decomp_base,
                                      uint32_t line_bytes = 32);
};

} // namespace rtd::compress

#endif // RTDC_COMPRESS_HUFFMAN_H
