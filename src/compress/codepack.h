/**
 * @file
 * CodePack-style compression (paper section 3.2, [IBM98]).
 *
 * Reconstruction of IBM's CodePack algorithm (the exact IBM codeword
 * tables are proprietary; tag widths follow the published descriptions —
 * see DESIGN.md section 7):
 *
 *  - each 32-bit instruction is split into 16-bit high and low halves;
 *  - each half is encoded against its own frequency-ranked dictionary
 *    with tagged variable-length codewords:
 *
 *        tag 00            rank 0 (most frequent value)        2 bits
 *        tag 01  + 4 bits  ranks 1..16                         6 bits
 *        tag 100 + 6 bits  ranks 17..80                        9 bits
 *        tag 101 + 8 bits  ranks 81..336                      11 bits
 *        tag 11  + 16 raw  escape (literal halfword)          18 bits
 *
 *  - 16 instructions (two 32-byte cache lines) form a group; each group's
 *    codewords start byte-aligned;
 *  - a mapping table with one 32-bit entry per group translates a missed
 *    line address to the group's byte offset in the codeword stream.
 *
 * The variable-length, bit-serial format is what makes the CodePack
 * software decompressor ~15x slower per line than the dictionary scheme,
 * while compressing substantially better.
 */

#ifndef RTDC_COMPRESS_CODEPACK_H
#define RTDC_COMPRESS_CODEPACK_H

#include <cstdint>
#include <string>
#include <vector>

#include "compress/compressed_image.h"

namespace rtd::compress {

/** CodePack group and tag-class geometry. */
struct CodePackParams
{
    static constexpr unsigned groupInsns = 16;   ///< instructions per group
    static constexpr unsigned groupBytes = 64;   ///< native bytes per group
    /** Rank class boundaries: [0], [1,17), [17,81), [81,337). */
    static constexpr unsigned class1First = 1;
    static constexpr unsigned class2First = 17;
    static constexpr unsigned class3First = 81;
    static constexpr unsigned dictEntries = 337; ///< max indexable ranks
};

/** Compressed form of an instruction stream. */
struct CodePackCompressed
{
    std::vector<uint16_t> highDict;  ///< frequency-ranked high halves
    std::vector<uint16_t> lowDict;   ///< frequency-ranked low halves
    std::vector<uint8_t> stream;     ///< byte-aligned group codewords
    /**
     * Mapping table, one 32-bit entry per *pair* of groups (as in IBM's
     * index table): bits [23:0] hold the even group's byte offset into
     * the stream, bits [31:24] the odd group's additional offset.
     */
    std::vector<uint32_t> mapTable;
    size_t numInsns = 0;             ///< instructions encoded (padded)

    /** Byte offset of group @p g in the stream (decoded from mapTable). */
    uint32_t groupOffset(size_t g) const;

    /** Payload bytes: stream + mapping table + both dictionaries. */
    uint32_t compressedBytes() const;
};

/** CodePack compressor / reference decompressor. */
class CodePack
{
  public:
    /**
     * Compress an instruction stream. The stream is padded with nops to
     * a whole number of groups (the software decompressor always
     * reconstructs full groups).
     */
    static CodePackCompressed compress(const std::vector<uint32_t> &words);

    /** Reference (C++) decompressor for round-trip tests. */
    static std::vector<uint32_t> decompress(
        const CodePackCompressed &compressed);

    /** Decompress a single group (group_idx) into 16 words. Asserts on
     *  corrupt input (use tryDecompressGroup for untrusted data). */
    static void decompressGroup(const CodePackCompressed &compressed,
                                size_t group_idx, uint32_t out[16]);

    /**
     * Hardened reference decode of one group for untrusted/corrupted
     * input: bounds-checks the mapping-table entry, the stream offset,
     * every dictionary rank, and the stream length. Returns false (with
     * a diagnostic in @p error when non-null) instead of asserting;
     * never reads out of bounds.
     */
    static bool tryDecompressGroup(const CodePackCompressed &compressed,
                                   size_t group_idx, uint32_t out[16],
                                   std::string *error = nullptr);

    /**
     * Build the memory image: .codewords, .map, .highdict and .lowdict
     * segments plus the c0 registers the CodePack handler reads.
     */
    static CompressedImage buildImage(const std::vector<uint32_t> &words,
                                      uint32_t decomp_base);
};

} // namespace rtd::compress

#endif // RTDC_COMPRESS_CODEPACK_H
