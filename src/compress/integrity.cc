#include "compress/integrity.h"

#include <algorithm>

#include "support/bitops.h"
#include "support/crc32.h"
#include "support/logging.h"

namespace rtd::compress {

std::vector<uint32_t>
computeUnitCrcs(const std::vector<uint32_t> &words, uint32_t unit_bytes)
{
    RTDC_ASSERT(unit_bytes >= 4 && unit_bytes % 4 == 0,
                "bad integrity unit %u", unit_bytes);
    const size_t unit_words = unit_bytes / 4;
    std::vector<uint32_t> crcs;
    crcs.reserve((words.size() + unit_words - 1) / unit_words);
    for (size_t base = 0; base < words.size(); base += unit_words) {
        size_t end = std::min(base + unit_words, words.size());
        Crc32 crc;
        for (size_t i = base; i < end; ++i)
            crc.updateWord(words[i]);
        crcs.push_back(crc.value());
    }
    return crcs;
}

void
attachIntegrity(CompressedImage &image, const std::vector<uint32_t> &words,
                uint32_t unit_bytes)
{
    image.crcUnitBytes = unit_bytes;
    image.unitCrcs = computeUnitCrcs(words, unit_bytes);

    uint32_t cursor = 0;
    for (const CompressedSegment &seg : image.segments) {
        cursor = std::max(
            cursor, seg.base + static_cast<uint32_t>(seg.bytes.size()));
    }
    CompressedSegment seg;
    seg.name = ".crc";
    seg.base = static_cast<uint32_t>(alignUp(cursor, 4));
    seg.bytes.resize(image.unitCrcs.size() * 4);
    for (size_t i = 0; i < image.unitCrcs.size(); ++i) {
        uint32_t v = image.unitCrcs[i];
        seg.bytes[i * 4] = static_cast<uint8_t>(v);
        seg.bytes[i * 4 + 1] = static_cast<uint8_t>(v >> 8);
        seg.bytes[i * 4 + 2] = static_cast<uint8_t>(v >> 16);
        seg.bytes[i * 4 + 3] = static_cast<uint8_t>(v >> 24);
    }
    image.segments.push_back(std::move(seg));
}

void
syncCrcsFromSegment(CompressedImage &image)
{
    const CompressedSegment *seg = image.segment(".crc");
    if (!seg)
        return;
    size_t entries = seg->bytes.size() / 4;
    image.unitCrcs.assign(entries, 0);
    for (size_t i = 0; i < entries; ++i) {
        image.unitCrcs[i] =
            static_cast<uint32_t>(seg->bytes[i * 4]) |
            static_cast<uint32_t>(seg->bytes[i * 4 + 1]) << 8 |
            static_cast<uint32_t>(seg->bytes[i * 4 + 2]) << 16 |
            static_cast<uint32_t>(seg->bytes[i * 4 + 3]) << 24;
    }
}

} // namespace rtd::compress
