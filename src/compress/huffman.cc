#include "compress/huffman.h"

#include <algorithm>
#include <queue>

#include "compress/bitstream.h"
#include "isa/isa.h"
#include "program/program.h"
#include "support/bitops.h"
#include "support/logging.h"

namespace rtd::compress {

HuffmanCode
HuffmanCode::build(const std::array<uint64_t, 256> &freq)
{
    // Classic two-queue Huffman over the used symbols, with iterative
    // frequency damping to enforce the 15-bit length limit (adequate
    // for byte alphabets; package-merge would be optimal but the
    // difference is negligible here).
    std::array<uint64_t, 256> f = freq;
    HuffmanCode out;

    for (int attempt = 0; attempt < 32; ++attempt) {
        struct Node
        {
            uint64_t weight;
            int left, right;  // -1 for leaves
            int symbol;
        };
        std::vector<Node> nodes;
        using Entry = std::pair<uint64_t, int>;  // (weight, node index)
        std::priority_queue<Entry, std::vector<Entry>,
                            std::greater<Entry>> heap;
        for (int s = 0; s < 256; ++s) {
            if (f[s] > 0) {
                nodes.push_back(Node{f[s], -1, -1, s});
                heap.push({f[s], static_cast<int>(nodes.size()) - 1});
            }
        }
        out.length.fill(0);
        if (nodes.empty())
            return out;
        if (nodes.size() == 1) {
            out.length[static_cast<uint8_t>(nodes[0].symbol)] = 1;
        } else {
            while (heap.size() > 1) {
                Entry a = heap.top();
                heap.pop();
                Entry b = heap.top();
                heap.pop();
                nodes.push_back(
                    Node{a.first + b.first, a.second, b.second, -1});
                heap.push({a.first + b.first,
                           static_cast<int>(nodes.size()) - 1});
            }
            // Depth-first depth assignment.
            std::vector<std::pair<int, int>> stack;  // (node, depth)
            stack.push_back({heap.top().second, 0});
            while (!stack.empty()) {
                auto [idx, depth] = stack.back();
                stack.pop_back();
                const Node &node = nodes[static_cast<size_t>(idx)];
                if (node.left < 0) {
                    out.length[static_cast<uint8_t>(node.symbol)] =
                        static_cast<uint8_t>(std::max(depth, 1));
                } else {
                    stack.push_back({node.left, depth + 1});
                    stack.push_back({node.right, depth + 1});
                }
            }
        }
        unsigned longest = 0;
        for (int s = 0; s < 256; ++s)
            longest = std::max<unsigned>(longest, out.length[s]);
        if (longest <= maxLen)
            break;
        // Damp the frequency skew and retry.
        for (auto &w : f) {
            if (w)
                w = (w + 1) / 2;
        }
    }

    // Canonicalize: assign consecutive codes by (length, symbol).
    out.countOfLen.fill(0);
    out.symbols.clear();
    for (int s = 0; s < 256; ++s) {
        if (out.length[s])
            ++out.countOfLen[out.length[s]];
    }
    std::array<uint16_t, maxLen + 2> next_code{};
    uint16_t code = 0;
    for (unsigned len = 1; len <= maxLen; ++len) {
        code = static_cast<uint16_t>((code + out.countOfLen[len - 1])
                                     << 1);
        next_code[len] = code;
    }
    for (int s = 0; s < 256; ++s) {
        if (out.length[s])
            out.code[s] = next_code[out.length[s]]++;
    }
    for (unsigned len = 1; len <= maxLen; ++len) {
        for (int s = 0; s < 256; ++s) {
            if (out.length[s] == len)
                out.symbols.push_back(static_cast<uint8_t>(s));
        }
    }
    return out;
}

double
HuffmanCode::averageBits(const std::array<uint64_t, 256> &freq) const
{
    uint64_t total = 0;
    uint64_t bits = 0;
    for (int s = 0; s < 256; ++s) {
        total += freq[s];
        bits += freq[s] * length[s];
    }
    return total ? static_cast<double>(bits) / static_cast<double>(total)
                 : 0.0;
}

uint32_t
HuffmanCompressed::lineOffset(size_t line) const
{
    size_t pair = line / 2;
    RTDC_ASSERT(pair < lat.size(), "line %zu outside LAT", line);
    uint32_t entry = lat[pair];
    uint32_t offset = entry & 0x00ffffffu;
    if (line & 1)
        offset += entry >> 24;
    return offset;
}

uint32_t
HuffmanCompressed::compressedBytes() const
{
    // Decode tables: 16 count bytes + the symbol permutation.
    return static_cast<uint32_t>(stream.size() + lat.size() * 4 + 16 +
                                 code.symbols.size());
}

HuffmanCompressed
HuffmanLine::compress(const std::vector<uint32_t> &words,
                      uint32_t line_bytes)
{
    RTDC_ASSERT(isPowerOfTwo(line_bytes) && line_bytes >= 8,
                "bad line size %u", line_bytes);
    std::vector<uint32_t> padded = words;
    while ((padded.size() * 4) % line_bytes != 0)
        padded.push_back(isa::nopWord());

    std::vector<uint8_t> bytes(padded.size() * 4);
    for (size_t i = 0; i < padded.size(); ++i) {
        bytes[i * 4] = static_cast<uint8_t>(padded[i]);
        bytes[i * 4 + 1] = static_cast<uint8_t>(padded[i] >> 8);
        bytes[i * 4 + 2] = static_cast<uint8_t>(padded[i] >> 16);
        bytes[i * 4 + 3] = static_cast<uint8_t>(padded[i] >> 24);
    }

    std::array<uint64_t, 256> freq{};
    for (uint8_t b : bytes)
        ++freq[b];

    HuffmanCompressed out;
    out.code = HuffmanCode::build(freq);
    out.lineBytes = line_bytes;
    out.numLines = bytes.size() / line_bytes;

    BitWriter bw;
    uint32_t even_offset = 0;
    for (size_t line = 0; line < out.numLines; ++line) {
        auto offset = static_cast<uint32_t>(bw.sizeBytes());
        if ((line & 1) == 0) {
            RTDC_ASSERT(offset < (1u << 24), "stream exceeds 16 MB");
            even_offset = offset;
            out.lat.push_back(offset);
        } else {
            uint32_t delta = offset - even_offset;
            RTDC_ASSERT(delta < 256, "line longer than 255 bytes");
            out.lat.back() |= delta << 24;
        }
        for (uint32_t i = 0; i < line_bytes; ++i) {
            uint8_t symbol = bytes[line * line_bytes + i];
            RTDC_ASSERT(out.code.length[symbol] > 0,
                        "symbol %u has no code", symbol);
            bw.put(out.code.code[symbol], out.code.length[symbol]);
        }
        bw.alignByte();
    }
    out.stream = bw.take();
    return out;
}

void
HuffmanLine::decompressLine(const HuffmanCompressed &compressed,
                            size_t line, uint8_t *out)
{
    size_t offset = compressed.lineOffset(line);
    BitReader br(compressed.stream.data() + offset,
                 compressed.stream.size() - offset);
    for (uint32_t i = 0; i < compressed.lineBytes; ++i) {
        // Canonical decode: extend the code bit by bit; at each length,
        // codes for that length occupy [first, first+count).
        uint16_t code = 0;
        uint32_t first = 0;
        uint32_t index = 0;
        unsigned len = 0;
        while (true) {
            code = static_cast<uint16_t>(code << 1 | br.get(1));
            ++len;
            RTDC_ASSERT(len <= HuffmanCode::maxLen,
                        "malformed huffman stream");
            uint32_t count = compressed.code.countOfLen[len];
            if (code < first + count) {
                size_t sym = index + code - first;
                RTDC_ASSERT(sym < compressed.code.symbols.size(),
                            "huffman symbol index outside permutation");
                out[i] = compressed.code.symbols[sym];
                break;
            }
            index += count;
            first = (first + count) << 1;
        }
    }
}

bool
HuffmanLine::tryDecompressLine(const HuffmanCompressed &compressed,
                               size_t line, uint8_t *out,
                               std::string *error)
{
    size_t pair = line / 2;
    if (pair >= compressed.lat.size()) {
        if (error)
            *error = "line " + std::to_string(line) + " outside LAT";
        return false;
    }
    uint32_t entry = compressed.lat[pair];
    uint32_t offset = entry & 0x00ffffffu;
    if (line & 1)
        offset += entry >> 24;
    if (offset > compressed.stream.size()) {
        if (error) {
            *error = "line offset " + std::to_string(offset) +
                     " outside stream of " +
                     std::to_string(compressed.stream.size()) + " bytes";
        }
        return false;
    }
    BitReader br(compressed.stream.data() + offset,
                 compressed.stream.size() - offset);
    for (uint32_t i = 0; i < compressed.lineBytes; ++i) {
        uint16_t code = 0;
        uint32_t first = 0;
        uint32_t index = 0;
        unsigned len = 0;
        while (true) {
            code = static_cast<uint16_t>(code << 1 | br.get(1));
            ++len;
            if (len > HuffmanCode::maxLen || br.overrun()) {
                if (error) {
                    *error = br.overrun()
                                 ? "huffman stream truncated mid-code"
                                 : "malformed huffman code (no symbol "
                                   "within maxLen bits)";
                }
                return false;
            }
            uint32_t count = compressed.code.countOfLen[len];
            if (code < first + count) {
                size_t sym = index + code - first;
                if (sym >= compressed.code.symbols.size()) {
                    if (error) {
                        *error = "huffman symbol index " +
                                 std::to_string(sym) +
                                 " outside permutation of " +
                                 std::to_string(
                                     compressed.code.symbols.size());
                    }
                    return false;
                }
                out[i] = compressed.code.symbols[sym];
                break;
            }
            index += count;
            first = (first + count) << 1;
        }
    }
    return true;
}

std::vector<uint32_t>
HuffmanLine::decompress(const HuffmanCompressed &compressed)
{
    std::vector<uint8_t> bytes(compressed.numLines *
                               compressed.lineBytes);
    for (size_t line = 0; line < compressed.numLines; ++line) {
        decompressLine(compressed, line,
                       bytes.data() + line * compressed.lineBytes);
    }
    std::vector<uint32_t> words(bytes.size() / 4);
    for (size_t i = 0; i < words.size(); ++i) {
        words[i] = static_cast<uint32_t>(bytes[i * 4]) |
                   static_cast<uint32_t>(bytes[i * 4 + 1]) << 8 |
                   static_cast<uint32_t>(bytes[i * 4 + 2]) << 16 |
                   static_cast<uint32_t>(bytes[i * 4 + 3]) << 24;
    }
    return words;
}

CompressedImage
HuffmanLine::buildImage(const std::vector<uint32_t> &words,
                        uint32_t decomp_base, uint32_t line_bytes)
{
    HuffmanCompressed hc = compress(words, line_bytes);

    CompressedImage image;
    image.scheme = Scheme::HuffmanLine;

    uint32_t cursor = prog::layout::compressedBase;
    auto add_segment = [&](const char *name, std::vector<uint8_t> bytes,
                           uint32_t align) {
        cursor = static_cast<uint32_t>(alignUp(cursor, align));
        CompressedSegment seg;
        seg.name = name;
        seg.base = cursor;
        seg.bytes = std::move(bytes);
        cursor += static_cast<uint32_t>(seg.bytes.size());
        image.segments.push_back(std::move(seg));
        return image.segments.back().base;
    };

    std::vector<uint8_t> lat_bytes(hc.lat.size() * 4);
    for (size_t i = 0; i < hc.lat.size(); ++i) {
        uint32_t v = hc.lat[i];
        lat_bytes[i * 4] = static_cast<uint8_t>(v);
        lat_bytes[i * 4 + 1] = static_cast<uint8_t>(v >> 8);
        lat_bytes[i * 4 + 2] = static_cast<uint8_t>(v >> 16);
        lat_bytes[i * 4 + 3] = static_cast<uint8_t>(v >> 24);
    }
    // Decode tables: countOfLen[1..16] as bytes, then the canonical
    // symbol permutation padded to 256 entries.
    std::vector<uint8_t> tab_bytes;
    for (unsigned len = 1; len <= HuffmanCode::maxLen + 1; ++len) {
        tab_bytes.push_back(static_cast<uint8_t>(
            len <= HuffmanCode::maxLen ? hc.code.countOfLen[len] : 0));
    }
    tab_bytes.insert(tab_bytes.end(), hc.code.symbols.begin(),
                     hc.code.symbols.end());
    tab_bytes.resize(16 + 256, 0);

    uint32_t stream_base = add_segment(".huffstream", hc.stream, 8);
    uint32_t lat_base = add_segment(".hufflat", std::move(lat_bytes), 4);
    uint32_t tab_base = add_segment(".hufftab", std::move(tab_bytes), 4);

    image.c0[isa::C0DecompBase] = decomp_base;
    image.c0[isa::C0IndexBase] = stream_base;
    image.c0[isa::C0MapBase] = lat_base;
    image.c0[isa::C0DictBase] = tab_base;
    return image;
}

} // namespace rtd::compress
