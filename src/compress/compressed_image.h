/**
 * @file
 * Common types for compressed program images.
 *
 * A compressor turns the linked compressed-region instruction stream into
 * (a) segments placed in simulated main memory and (b) the coprocessor-0
 * register values the software decompressor reads with mfc0 (Figure 2
 * loads the decompressed base, dictionary base, and index base from
 * c0[0..2]).
 */

#ifndef RTDC_COMPRESS_COMPRESSED_IMAGE_H
#define RTDC_COMPRESS_COMPRESSED_IMAGE_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace rtd::compress {

/** Which compression scheme a program uses. */
enum class Scheme : uint8_t
{
    None,        ///< plain native code
    Dictionary,  ///< 16-bit fixed indices into an instruction dictionary
    CodePack,    ///< IBM CodePack-style variable-length codewords
    /**
     * Procedure-granularity LZRW1 with a software-managed procedure
     * cache — the Kirovski et al. baseline the paper compares against.
     */
    ProcLzrw1,
    /**
     * Byte-granularity Huffman-coded cache lines — the CCRP format
     * ([Wolfe92]) decoded by a software handler, demonstrating that
     * software decompression can adopt any algorithm.
     */
    HuffmanLine,
};

const char *schemeName(Scheme scheme);

/** One compressed segment to be placed in main memory. */
struct CompressedSegment
{
    std::string name;  ///< e.g. ".indices", ".dictionary"
    uint32_t base = 0;
    std::vector<uint8_t> bytes;
};

/** The full compressed representation of a program's compressed region. */
struct CompressedImage
{
    Scheme scheme = Scheme::None;
    std::vector<CompressedSegment> segments;
    /** c0 register file contents the decompressor expects. */
    std::array<uint32_t, isa::numC0Regs> c0{};

    /// @name Optional integrity metadata (attachIntegrity(); see
    /// DESIGN.md section 12). Zero/empty when integrity is disabled.
    /// @{
    /** Decompressed bytes covered by each CRC (a cache line, or one
     *  64-byte CodePack group). */
    uint32_t crcUnitBytes = 0;
    /** CRC-32 of each unit's original instruction words (LE bytes),
     *  in region order; mirrored into the ".crc" segment. */
    std::vector<uint32_t> unitCrcs;
    /// @}

    /**
     * Total payload bytes (all segments) — the numerator of the paper's
     * compression ratio. The decompressor code itself is excluded, as in
     * the paper ("the decompression code is not included in the
     * compressed program sizes").
     */
    uint32_t compressedBytes() const;

    /** Segment lookup by name; nullptr when absent. */
    const CompressedSegment *segment(const std::string &name) const;
};

} // namespace rtd::compress

#endif // RTDC_COMPRESS_COMPRESSED_IMAGE_H
