/**
 * @file
 * Plain-text table formatting for bench output.
 *
 * The bench binaries print the same rows/series the paper's tables and
 * figures report; Table gives them a uniform, aligned rendering.
 */

#ifndef RTDC_SUPPORT_TABLE_H
#define RTDC_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace rtd {

/** Column-aligned text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns, header underline, trailing newline. */
    std::string render() const;

    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float with fixed decimals, e.g. fmtDouble(2.987, 2) -> "2.99". */
std::string fmtDouble(double value, int decimals);

/** Percentage with fixed decimals and trailing '%'. */
std::string fmtPercent(double value, int decimals);

/** Thousands-separated integer, e.g. 1083168 -> "1,083,168". */
std::string fmtCount(uint64_t value);

} // namespace rtd

#endif // RTDC_SUPPORT_TABLE_H
