/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used for the
 * optional per-line/per-group integrity metadata of compressed images
 * (DESIGN.md section 12). Dependency-free and table-driven; the table is
 * built once on first use.
 */

#ifndef RTDC_SUPPORT_CRC32_H
#define RTDC_SUPPORT_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace rtd {

namespace detail {

inline const std::array<uint32_t, 256> &
crc32Table()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
            t[i] = crc;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** Incremental CRC-32 over a byte stream. */
class Crc32
{
  public:
    void
    update(uint8_t byte)
    {
        state_ = (state_ >> 8) ^
                 detail::crc32Table()[(state_ ^ byte) & 0xffu];
    }

    void
    update(const uint8_t *data, size_t size)
    {
        for (size_t i = 0; i < size; ++i)
            update(data[i]);
    }

    /** Feed one 32-bit word as its four little-endian bytes. */
    void
    updateWord(uint32_t word)
    {
        update(static_cast<uint8_t>(word));
        update(static_cast<uint8_t>(word >> 8));
        update(static_cast<uint8_t>(word >> 16));
        update(static_cast<uint8_t>(word >> 24));
    }

    uint32_t value() const { return ~state_; }

  private:
    uint32_t state_ = 0xFFFFFFFFu;
};

/** One-shot CRC-32 of a byte buffer. */
inline uint32_t
crc32(const uint8_t *data, size_t size)
{
    Crc32 crc;
    crc.update(data, size);
    return crc.value();
}

} // namespace rtd

#endif // RTDC_SUPPORT_CRC32_H
