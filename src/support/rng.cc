#include "support/rng.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace rtd {

Rng::Rng(uint64_t seed)
    : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
{
}

uint64_t
Rng::next()
{
    // xorshift64* (Vigna): good statistical quality, one multiply.
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    RTDC_ASSERT(bound != 0, "nextBelow(0)");
    // Multiply-shift reduction; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    RTDC_ASSERT(lo <= hi, "nextRange(%lld, %lld)",
                static_cast<long long>(lo), static_cast<long long>(hi));
    return lo + static_cast<int64_t>(
        nextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    return nextDouble() < p;
}

ZipfSampler::ZipfSampler(size_t n, double theta)
{
    RTDC_ASSERT(n > 0, "ZipfSampler over empty population");
    cdf_.resize(n);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
        cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i)
        cdf_[i] /= sum;
}

size_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.nextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<size_t>(it - cdf_.begin());
}

double
ZipfSampler::mass(size_t rank) const
{
    RTDC_ASSERT(rank < cdf_.size(), "rank out of range");
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

} // namespace rtd
