#include "support/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace rtd {

namespace {

bool informEnabled = true;

/** Per-thread ScopedErrorTrap nesting depth. */
thread_local int errorTrapDepth = 0;

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n <= 0)
        return "";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

ScopedErrorTrap::ScopedErrorTrap()
{
    ++errorTrapDepth;
}

ScopedErrorTrap::~ScopedErrorTrap()
{
    --errorTrapDepth;
}

bool
ScopedErrorTrap::active()
{
    return errorTrapDepth > 0;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    if (errorTrapDepth > 0) {
        std::string msg = vformat(fmt, args);
        va_end(args);
        throw SimError("panic: " + msg);
    }
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    if (errorTrapDepth > 0) {
        std::string msg = vformat(fmt, args);
        va_end(args);
        throw SimError("fatal: " + msg);
    }
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

namespace detail {

std::string
formatMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n <= 0) {
        va_end(args);
        return "";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace detail

} // namespace rtd
