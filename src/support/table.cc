#include "support/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "support/logging.h"

namespace rtd {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    RTDC_ASSERT(!headers_.empty(), "table with no columns");
}

void
Table::addRow(std::vector<std::string> cells)
{
    RTDC_ASSERT(cells.size() == headers_.size(),
                "row has %zu cells, table has %zu columns",
                cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };
    emit(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
fmtDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtPercent(double value, int decimals)
{
    return fmtDouble(value, decimals) + "%";
}

std::string
fmtCount(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

} // namespace rtd
