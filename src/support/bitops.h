/**
 * @file
 * Bit-manipulation helpers used by the ISA encoder/decoder and the
 * compression engines.
 */

#ifndef RTDC_SUPPORT_BITOPS_H
#define RTDC_SUPPORT_BITOPS_H

#include <cstdint>

namespace rtd {

/** Extract bits [lo, lo+width) of @p value (lo counted from bit 0). */
constexpr uint32_t
bits(uint32_t value, unsigned lo, unsigned width)
{
    return (value >> lo) & ((width >= 32) ? 0xffffffffu
                                          : ((1u << width) - 1u));
}

/** Insert the low @p width bits of @p field at bit position @p lo. */
constexpr uint32_t
insertBits(uint32_t value, unsigned lo, unsigned width, uint32_t field)
{
    uint32_t mask = ((width >= 32) ? 0xffffffffu : ((1u << width) - 1u))
                    << lo;
    return (value & ~mask) | ((field << lo) & mask);
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr int32_t
signExtend(uint32_t value, unsigned width)
{
    uint32_t shift = 32 - width;
    return static_cast<int32_t>(value << shift) >> shift;
}

/** True when @p value is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
floorLog2(uint64_t value)
{
    unsigned result = 0;
    while (value > 1) {
        value >>= 1;
        ++result;
    }
    return result;
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr uint64_t
alignUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of @p align (a power of two). */
constexpr uint64_t
alignDown(uint64_t value, uint64_t align)
{
    return value & ~(align - 1);
}

} // namespace rtd

#endif // RTDC_SUPPORT_BITOPS_H
