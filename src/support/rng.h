/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All randomness in the repository flows through Rng so that every
 * experiment is exactly reproducible from a seed. The Zipf sampler is used
 * by the workload generator to model the highly skewed reuse of
 * instruction encodings and procedure call frequencies observed in real
 * programs.
 */

#ifndef RTDC_SUPPORT_RNG_H
#define RTDC_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rtd {

/** xorshift64* generator: fast, deterministic, seedable. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

  private:
    uint64_t state_;
};

/**
 * Draws integers in [0, n) with probability proportional to
 * 1 / (rank+1)^theta, via an inverse-CDF table.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     population size (> 0)
     * @param theta skew; 0 = uniform, ~1 = classic Zipf
     */
    ZipfSampler(size_t n, double theta);

    /** Draw one rank in [0, n). */
    size_t sample(Rng &rng) const;

    size_t size() const { return cdf_.size(); }

    /** Probability mass of a given rank. */
    double mass(size_t rank) const;

  private:
    std::vector<double> cdf_;
};

} // namespace rtd

#endif // RTDC_SUPPORT_RNG_H
