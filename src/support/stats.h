/**
 * @file
 * Lightweight statistics helpers shared by the simulator components.
 *
 * Components keep plain named counters in a StatGroup so that tests and
 * benches can read them by name, and Experiment code can dump them
 * uniformly.
 */

#ifndef RTDC_SUPPORT_STATS_H
#define RTDC_SUPPORT_STATS_H

#include <cstdint>
#include <deque>
#include <string>

namespace rtd {

/** One named 64-bit counter. */
struct Stat
{
    std::string name;
    uint64_t value = 0;
};

/**
 * An ordered collection of named counters.
 *
 * Registration order is preserved for reporting. References returned by
 * add() stay valid for the lifetime of the group (deque storage). Lookup
 * is linear — groups are small and never on the simulation fast path
 * (components hold direct references to their counters).
 */
class StatGroup
{
  public:
    /** Register a counter and return a stable reference to its value. */
    uint64_t &add(const std::string &name);

    /** Value of a counter by name; panics when missing. */
    uint64_t get(const std::string &name) const;

    /** True when a counter with @p name exists. */
    bool has(const std::string &name) const;

    /** Reset every counter to zero. */
    void reset();

    const std::deque<Stat> &all() const { return stats_; }

    /** Render "name = value" lines, one per counter. */
    std::string dump(const std::string &prefix = "") const;

  private:
    std::deque<Stat> stats_;
};

/** Percentage helper: 100 * num / den, 0 when den == 0. */
double percent(uint64_t num, uint64_t den);

/** Ratio helper: num / den as double, 0 when den == 0. */
double ratio(uint64_t num, uint64_t den);

} // namespace rtd

#endif // RTDC_SUPPORT_STATS_H
