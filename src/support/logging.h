/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (a bug in the simulator itself), fatal() for user/configuration errors
 * the simulation cannot continue past, warn()/inform() for status messages
 * that never stop the run.
 */

#ifndef RTDC_SUPPORT_LOGGING_H
#define RTDC_SUPPORT_LOGGING_H

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace rtd {

/**
 * Structured simulation error: the exception form of fatal()/panic().
 *
 * Thrown directly by code that reports recoverable input problems (e.g.
 * the dictionary compressor's 64K-unique-instruction overflow, a corrupt
 * BuiltImage rejected at System construction), and by fatal()/panic()
 * themselves while a ScopedErrorTrap is armed on the calling thread —
 * which is how the sweep harness isolates a poisoned job as a structured
 * failure row instead of killing the whole process.
 */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * RAII guard that converts fatal()/panic() on this thread into thrown
 * SimError for its lifetime. Nestable; affects only the arming thread,
 * so worker threads trap their own jobs while the default process-exit
 * behavior stays untouched everywhere else.
 */
class ScopedErrorTrap
{
  public:
    ScopedErrorTrap();
    ~ScopedErrorTrap();
    ScopedErrorTrap(const ScopedErrorTrap &) = delete;
    ScopedErrorTrap &operator=(const ScopedErrorTrap &) = delete;

    /** True when a trap is armed on the calling thread. */
    static bool active();
};

/** Print a formatted message and abort(); use for simulator bugs.
 *  Throws SimError instead while a ScopedErrorTrap is armed. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1); use for user errors.
 *  Throws SimError instead while a ScopedErrorTrap is armed. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning; never stops the run. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/**
 * Assert-like check that is always compiled in.
 * Panics with the given message when the condition is false.
 */
#define RTDC_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::rtd::panic("assertion failed: %s: %s", #cond,                 \
                         ::rtd::detail::formatMessage(__VA_ARGS__).c_str());\
    } while (0)

namespace detail {

/** Render a printf-style message to a std::string (helper for macros). */
std::string formatMessage(const char *fmt = "", ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace rtd

#endif // RTDC_SUPPORT_LOGGING_H
