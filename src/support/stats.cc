#include "support/stats.h"

#include <sstream>

#include "support/logging.h"

namespace rtd {

uint64_t &
StatGroup::add(const std::string &name)
{
    RTDC_ASSERT(!has(name), "duplicate stat '%s'", name.c_str());
    stats_.push_back(Stat{name, 0});
    return stats_.back().value;
}

uint64_t
StatGroup::get(const std::string &name) const
{
    for (const Stat &s : stats_) {
        if (s.name == name)
            return s.value;
    }
    panic("unknown stat '%s'", name.c_str());
}

bool
StatGroup::has(const std::string &name) const
{
    for (const Stat &s : stats_) {
        if (s.name == name)
            return true;
    }
    return false;
}

void
StatGroup::reset()
{
    for (Stat &s : stats_)
        s.value = 0;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const Stat &s : stats_)
        os << prefix << s.name << " = " << s.value << "\n";
    return os.str();
}

double
percent(uint64_t num, uint64_t den)
{
    return den == 0 ? 0.0
                    : 100.0 * static_cast<double>(num)
                            / static_cast<double>(den);
}

double
ratio(uint64_t num, uint64_t den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
}

} // namespace rtd
