#include "isa16/thumb.h"

#include "isa/isa.h"
#include "program/builder.h"
#include "support/logging.h"

namespace rtd::isa16 {

using namespace rtd::isa;
using prog::ProcedureBuilder;
using prog::SymInst;

namespace {

/**
 * The eight registers reachable by short encodings. Chosen to cover the
 * registers hot in generated and hand-written code (MIPS16 uses
 * v0-v1/a0-a3/t0-t1; our mix leans on t0-t3).
 */
bool
lowReg(uint8_t r)
{
    switch (r) {
      case V0: case V1: case A0: case A1:
      case T0: case T1: case T2: case T3:
        return true;
      default:
        return false;
    }
}

bool
fitsImm(uint16_t imm, unsigned bits)
{
    return imm < (1u << bits);
}

/** Classification of one instruction under the 16-bit encoding. */
enum class Form
{
    Short,      ///< one 2-byte instruction
    Extended,   ///< EXTEND prefix: 4 bytes, still one instruction
    TwoAddr,    ///< needs a move inserted (4 bytes, two instructions)
    CmpBranch,  ///< two-register branch: xor+bz (4 bytes, two insns)
    Word,       ///< natively 32-bit (jal), 4 bytes
};

Form
classify(const SymInst &si)
{
    const Instruction &inst = si.inst;
    switch (inst.op) {
      // Natively 32-bit control transfers.
      case Op::J: case Op::Jal: case Op::Lui:
        return inst.op == Op::Lui ? Form::Extended : Form::Word;

      // Register jumps.
      case Op::Jr: case Op::Jalr:
        return lowReg(inst.rs) ? Form::Short : Form::Extended;

      // Two-register compare-and-branch does not exist in 16-bit ISAs.
      case Op::Beq: case Op::Bne:
        if (inst.rs == 0 || inst.rt == 0) {
            // Already a compare-with-zero.
            uint8_t reg = inst.rs == 0 ? inst.rt : inst.rs;
            return lowReg(reg) ? Form::Short : Form::Extended;
        }
        return Form::CmpBranch;
      case Op::Blez: case Op::Bgtz: case Op::Bltz: case Op::Bgez:
        return lowReg(inst.rs) ? Form::Short : Form::Extended;

      // Three-address add/sub exist (MIPS16 ADDU/SUBU rz,rx,ry).
      case Op::Add: case Op::Addu: case Op::Sub: case Op::Subu:
        return lowReg(inst.rd) && lowReg(inst.rs) && lowReg(inst.rt)
                   ? Form::Short
                   : Form::Extended;

      // Logical ops are two-address.
      case Op::And: case Op::Or: case Op::Xor: case Op::Nor:
      case Op::Slt: case Op::Sltu:
      case Op::Sllv: case Op::Srlv: case Op::Srav:
        if (!lowReg(inst.rd) || !lowReg(inst.rs) || !lowReg(inst.rt))
            return Form::Extended;
        if (inst.rd == inst.rs || inst.rd == inst.rt)
            return Form::Short;
        return Form::TwoAddr;

      // Shift-by-immediate: 3-bit shift amounts.
      case Op::Sll: case Op::Srl: case Op::Sra:
        return lowReg(inst.rd) && lowReg(inst.rt) && inst.shamt < 8
                   ? Form::Short
                   : Form::Extended;

      // Immediate ALU: two-address with 8-bit immediates, plus the
      // MIPS16 three-address ADDIU ry,rx,imm4 form.
      case Op::Addi: case Op::Addiu:
        if (!lowReg(inst.rt) || !lowReg(inst.rs))
            return Form::Extended;
        if (inst.rt == inst.rs && fitsImm(inst.imm, 8))
            return Form::Short;
        if (fitsImm(inst.imm, 3))
            return Form::Short;
        return Form::Extended;
      case Op::Slti: case Op::Sltiu:
        return lowReg(inst.rt) && lowReg(inst.rs) &&
                       inst.rt == inst.rs && fitsImm(inst.imm, 8)
                   ? Form::Short
                   : Form::Extended;
      // 16-bit ISAs have no immediate logicals at all.
      case Op::Andi: case Op::Ori: case Op::Xori:
        return Form::Extended;

      // Word memory ops: 5-bit scaled offsets.
      case Op::Lw: case Op::Sw:
        return lowReg(inst.rt) && lowReg(inst.rs) &&
                       (inst.imm & 3) == 0 && fitsImm(inst.imm, 7)
                   ? Form::Short
                   : Form::Extended;
      case Op::Lb: case Op::Lbu: case Op::Lh: case Op::Lhu:
      case Op::Sb: case Op::Sh:
        return lowReg(inst.rt) && lowReg(inst.rs) && fitsImm(inst.imm, 5)
                   ? Form::Short
                   : Form::Extended;

      case Op::Mult: case Op::Multu: case Op::Div: case Op::Divu:
        return lowReg(inst.rs) && lowReg(inst.rt) ? Form::Short
                                                  : Form::Extended;
      case Op::Mfhi: case Op::Mflo:
        return lowReg(inst.rd) ? Form::Short : Form::Extended;
      case Op::Mthi: case Op::Mtlo:
        return lowReg(inst.rs) ? Form::Short : Form::Extended;

      case Op::Syscall: case Op::Break: case Op::Halt:
        return Form::Short;

      // System/extension instructions have no 16-bit form.
      default:
        return Form::Extended;
    }
}

} // namespace

ThumbProcedure
translateProcedure(const prog::Procedure &proc)
{
    ThumbProcedure out;
    ProcedureBuilder b(proc.name);

    // Labels map 1:1; bindings move with the transformed positions.
    std::vector<prog::Label> labels(proc.labels.size());
    for (size_t i = 0; i < labels.size(); ++i)
        labels[i] = b.newLabel();
    // Invert: original instruction index -> labels bound there.
    std::vector<std::vector<prog::Label>> bound_at(proc.code.size() + 1);
    for (size_t l = 0; l < proc.labels.size(); ++l)
        bound_at[static_cast<size_t>(proc.labels[l])].push_back(
            labels[l]);

    auto emit = [&](const SymInst &si) {
        if (si.label >= 0) {
            // Re-emit with the remapped label.
            Instruction inst = si.inst;
            switch (inst.op) {
              case Op::Beq:
                b.beq(inst.rs, inst.rt, labels[si.label]);
                break;
              case Op::Bne:
                b.bne(inst.rs, inst.rt, labels[si.label]);
                break;
              case Op::Blez: b.blez(inst.rs, labels[si.label]); break;
              case Op::Bgtz: b.bgtz(inst.rs, labels[si.label]); break;
              case Op::Bltz: b.bltz(inst.rs, labels[si.label]); break;
              case Op::Bgez: b.bgez(inst.rs, labels[si.label]); break;
              default:
                panic("unexpected label-bearing op %s",
                      opName(inst.op));
            }
        } else if (si.callee >= 0) {
            if (si.inst.op == Op::Jal)
                b.jal(si.callee);
            else
                b.j(si.callee);
        } else {
            b.emit(si.inst);
        }
    };

    for (size_t i = 0; i < proc.code.size(); ++i) {
        for (prog::Label l : bound_at[i])
            b.bind(l);
        const SymInst &si = proc.code[i];
        Form form = classify(si);
        switch (form) {
          case Form::Short:
            out.sizeBytes += 2;
            ++out.shortCount;
            emit(si);
            break;
          case Form::Extended:
          case Form::Word:
            out.sizeBytes += 4;
            if (form == Form::Extended)
                ++out.extendedCount;
            emit(si);
            break;
          case Form::TwoAddr: {
            // mov rd, rs ; op rd, rd, rt — two short instructions.
            out.sizeBytes += 4;
            ++out.insertedCount;
            b.addu(si.inst.rd, si.inst.rs, Zero);
            SymInst fixed = si;
            fixed.inst.rs = si.inst.rd;
            emit(fixed);
            break;
          }
          case Form::CmpBranch: {
            // xor at, rs, rt ; beqz/bnez at — two short instructions.
            out.sizeBytes += 4;
            ++out.insertedCount;
            b.xor_(At, si.inst.rs, si.inst.rt);
            SymInst fixed = si;
            fixed.inst.rs = At;
            fixed.inst.rt = Zero;
            emit(fixed);
            break;
          }
        }
    }
    for (prog::Label l : bound_at[proc.code.size()])
        b.bind(l);

    out.code = b.take();
    return out;
}

uint32_t
ThumbProgram::textBytes16() const
{
    uint32_t total = 0;
    for (uint32_t bytes : procBytes)
        total += bytes;
    return total;
}

ThumbProgram
translateProgram(const prog::Program &program,
                 const std::vector<uint8_t> &translate16)
{
    std::vector<uint8_t> mask = translate16;
    if (mask.empty())
        mask.assign(program.procs.size(), 1);
    RTDC_ASSERT(mask.size() == program.procs.size(),
                "translate16 mask size mismatch");

    ThumbProgram out;
    out.program.name = program.name + ".16";
    out.program.entry = program.entry;
    out.program.data = program.data;
    out.program.dataSize = program.dataSize;
    out.program.dataRelocs = program.dataRelocs;
    out.translated = mask;
    out.procBytes.resize(program.procs.size());

    for (size_t i = 0; i < program.procs.size(); ++i) {
        if (mask[i]) {
            ThumbProcedure tp = translateProcedure(program.procs[i]);
            out.procBytes[i] = tp.sizeBytes;
            out.program.procs.push_back(std::move(tp.code));
        } else {
            out.procBytes[i] = program.procs[i].sizeBytes();
            out.program.procs.push_back(program.procs[i]);
        }
    }
    out.program.check();
    return out;
}

} // namespace rtd::isa16
