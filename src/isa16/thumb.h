/**
 * @file
 * A MIPS16/Thumb-style 16-bit re-encoding baseline (paper section 3.3).
 *
 * The paper positions selective compression against the dense-ISA
 * approach of MIPS16 [Kissell97] and Thumb [ARM95]: procedures are
 * re-encoded into 16-bit instructions, which shrinks them to ~70% but
 * "typically takes 15%-20% more 16-bit instructions to emulate 32-bit
 * instructions", so the cost is paid on every *execution* rather than
 * on every cache *miss*. That difference is exactly why execution-based
 * selection is right for MIPS16/Thumb and miss-based selection is right
 * for the paper's decompressors.
 *
 * The translator is a program->program transform faithful to the
 * MIPS16/Thumb restrictions:
 *  - only eight "low" registers are addressable in short encodings;
 *  - logical ops are two-address (a register move is inserted when the
 *    destination is not one of the sources);
 *  - two-register compare-and-branch does not exist (rewritten to
 *    xor at,rs,rt + beqz/bnez at, using the assembler-temp register);
 *  - small immediates/offsets only; anything else needs the 32-bit
 *    EXTEND form (counted as 4 bytes of code size).
 *
 * Static size is accounted per instruction (2 or 4 bytes); the
 * transformed program still executes on the normal pipeline, so the
 * execution-time overhead arises from the genuinely inserted
 * instructions, as on real hardware. The improved I-fetch density of
 * 16-bit code is not modeled (documented simplification; it would
 * slightly favor this baseline on high-miss benchmarks).
 */

#ifndef RTDC_ISA16_THUMB_H
#define RTDC_ISA16_THUMB_H

#include <cstdint>
#include <vector>

#include "program/program.h"

namespace rtd::isa16 {

/** Result of translating one procedure. */
struct ThumbProcedure
{
    prog::Procedure code;        ///< transformed instruction sequence
    uint32_t sizeBytes = 0;      ///< 16-bit-encoded size (2/4 per insn)
    uint32_t shortCount = 0;     ///< instructions in 2-byte form
    uint32_t extendedCount = 0;  ///< instructions needing EXTEND (4 B)
    uint32_t insertedCount = 0;  ///< extra instructions (moves, xor)
};

/** Result of translating a program (possibly selectively). */
struct ThumbProgram
{
    prog::Program program;            ///< runnable transformed program
    std::vector<uint32_t> procBytes;  ///< 16-bit size metric per proc
    std::vector<uint8_t> translated;  ///< 1 where re-encoded

    /** Total code size under the 16-bit encoding (the size metric). */
    uint32_t textBytes16() const;
};

/** Translate a single procedure to the 16-bit form. */
ThumbProcedure translateProcedure(const prog::Procedure &proc);

/**
 * Translate @p program; procedures with @p translate16 set are
 * re-encoded, the rest stay 32-bit native (the MIPS16/Thumb selective
 * model). An empty mask re-encodes everything.
 */
ThumbProgram translateProgram(const prog::Program &program,
                              const std::vector<uint8_t> &translate16 = {});

} // namespace rtd::isa16

#endif // RTDC_ISA16_THUMB_H
