/**
 * @file
 * The software decompression exception handlers.
 *
 * These are real programs in the rtd ISA, assembled at build time and
 * loaded into the on-chip HandlerRam. On a compressed-region I-cache
 * miss the CPU vectors to HandlerRam::base and executes them
 * instruction by instruction, so every cost the paper attributes to the
 * software decompressor (dynamic instruction count, register
 * save/restore traffic, D-cache behaviour of the table loads, bit-serial
 * CodePack decoding) is simulated rather than asserted.
 *
 * Four handlers are provided, matching the paper's four schemes:
 *  - dictionary (Figure 2): 26 static / 75 dynamic instructions per line
 *  - dictionary + second register file: no save/restore, fully unrolled
 *  - CodePack: bit-serial tag decode, ~1100 dynamic instructions/group
 *  - CodePack + second register file: no save/restore
 */

#ifndef RTDC_RUNTIME_HANDLERS_H
#define RTDC_RUNTIME_HANDLERS_H

#include <cstdint>
#include <vector>

#include "compress/compressed_image.h"
#include "program/program.h"

namespace rtd::runtime {

/** An assembled handler plus its metadata. */
struct HandlerBuild
{
    std::vector<uint32_t> code;  ///< words, to load at HandlerRam::base
    bool usesShadowRegs = false; ///< runs on the second register file

    uint32_t sizeBytes() const
    {
        return static_cast<uint32_t>(code.size()) * 4;
    }
    uint32_t staticInsns() const
    {
        return static_cast<uint32_t>(code.size());
    }
};

/**
 * Build the dictionary-decompression handler (paper Figure 2).
 *
 * @param second_reg_file run on the shadow register file: no register
 *                        save/restore, and the per-line loop is fully
 *                        unrolled (section 4.1)
 * @param line_bytes      I-cache line size; the paper's 32 B gives the
 *                        published 26-static / 75-dynamic counts
 */
HandlerBuild buildDictionaryHandler(bool second_reg_file,
                                    uint32_t line_bytes = 32);

/**
 * Build the CodePack-decompression handler. Decompresses the whole
 * 16-instruction (64-byte) group containing the missed line.
 */
HandlerBuild buildCodePackHandler(bool second_reg_file);

/**
 * Build the Huffman-line (CCRP-format) handler: bit-serial canonical
 * Huffman decode of the missed line.
 */
HandlerBuild buildHuffmanHandler(bool second_reg_file,
                                 uint32_t line_bytes = 32);

/** Dispatch on scheme. */
HandlerBuild buildHandler(compress::Scheme scheme, bool second_reg_file,
                          uint32_t line_bytes = 32);

} // namespace rtd::runtime

#endif // RTDC_RUNTIME_HANDLERS_H
