/**
 * @file
 * The CodePack decompression exception handler.
 *
 * CodePack compresses 16 instructions (two 32-byte cache lines) into a
 * group of unaligned variable-length codewords, which "constrains the
 * decompressor to serially decode each instruction" (paper section 3.2).
 * On a miss the handler:
 *
 *  1. looks up the missed line's group in the mapping table (the extra
 *     memory access the dictionary scheme avoids),
 *  2. bit-serially decodes 16 high/low halfword codewords against the
 *     two ranked dictionaries,
 *  3. installs both cache lines of the group with swic.
 *
 * The bit-serial decode is what makes this handler an order of magnitude
 * slower than the dictionary handler (~1100 vs 75 dynamic instructions).
 */

#include "runtime/handlers.h"

#include "mem/handler_ram.h"
#include "program/builder.h"
#include "program/linker.h"

namespace rtd::runtime {

using namespace rtd::isa;
using prog::Label;
using prog::ProcedureBuilder;

namespace {

/**
 * Register allocation (r26/r27 = k0/k1 are OS-reserved and free):
 *   r8 : codeword source pointer      r9 : bit buffer (left-aligned)
 *   r10: valid bit count              r11: destination address
 *   r12: high dictionary base         r13: low dictionary base
 *   r14: scratch / decoded halfword   r15: scratch
 *   r26: group end address            r27: assembled instruction word
 */
constexpr uint8_t rSrc = 8;
constexpr uint8_t rBuf = 9;
constexpr uint8_t rCnt = 10;
constexpr uint8_t rDst = 11;
constexpr uint8_t rHiDict = 12;
constexpr uint8_t rLoDict = 13;
constexpr uint8_t rVal = 14;
constexpr uint8_t rTmp = 15;
constexpr uint8_t rEnd = K0;
constexpr uint8_t rWord = K1;

/**
 * Emit the decode of one halfword codeword: result in rVal. Consumes
 * bits from rBuf/rCnt, refilling bytewise from rSrc. Tag layout is the
 * CodePack reconstruction of DESIGN.md section 7.
 */
void
emitDecodeHalf(ProcedureBuilder &b, uint8_t dict_base)
{
    Label refill_loop = b.newLabel();
    Label refilled = b.newLabel();
    Label not00 = b.newLabel();
    Label not01 = b.newLabel();
    Label tag101 = b.newLabel();
    Label tag11 = b.newLabel();
    Label done = b.newLabel();

    // Refill: the longest codeword is 18 bits (escape), so top up the
    // bit buffer a byte at a time until at least 18 bits are valid.
    b.bind(refill_loop);
    b.slti(rTmp, rCnt, 18);
    b.beq(rTmp, Zero, refilled);
    b.lbu(rVal, 0, rSrc);
    b.addiu(rSrc, rSrc, 1);
    b.addiu(rTmp, Zero, 24);
    b.subu(rTmp, rTmp, rCnt);
    b.sllv(rVal, rVal, rTmp);     // position byte below current bits
    b.or_(rBuf, rBuf, rVal);
    b.addiu(rCnt, rCnt, 8);
    b.b(refill_loop);
    b.bind(refilled);

    // 2-bit tag.
    b.srl(rVal, rBuf, 30);
    b.sll(rBuf, rBuf, 2);
    b.addiu(rCnt, rCnt, -2);
    b.bne(rVal, Zero, not00);

    // tag 00: rank 0 (the most frequent halfword).
    b.lhu(rVal, 0, dict_base);
    b.b(done);

    b.bind(not00);
    b.addiu(rTmp, rVal, -1);
    b.bne(rTmp, Zero, not01);

    // tag 01 + 4-bit index: ranks 1..16.
    b.srl(rVal, rBuf, 28);
    b.sll(rBuf, rBuf, 4);
    b.addiu(rCnt, rCnt, -4);
    b.addiu(rVal, rVal, 1);
    b.sll(rVal, rVal, 1);
    b.addu(rTmp, dict_base, rVal);
    b.lhu(rVal, 0, rTmp);
    b.b(done);

    b.bind(not01);
    b.addiu(rTmp, rVal, -2);
    b.bne(rTmp, Zero, tag11);

    // tag 10x: one more tag bit selects the 6- or 8-bit index class.
    b.srl(rTmp, rBuf, 31);
    b.sll(rBuf, rBuf, 1);
    b.addiu(rCnt, rCnt, -1);
    b.bne(rTmp, Zero, tag101);

    // tag 100 + 6-bit index: ranks 17..80.
    b.srl(rVal, rBuf, 26);
    b.sll(rBuf, rBuf, 6);
    b.addiu(rCnt, rCnt, -6);
    b.addiu(rVal, rVal, 17);
    b.sll(rVal, rVal, 1);
    b.addu(rTmp, dict_base, rVal);
    b.lhu(rVal, 0, rTmp);
    b.b(done);

    b.bind(tag101);
    // tag 101 + 8-bit index: ranks 81..336.
    b.srl(rVal, rBuf, 24);
    b.sll(rBuf, rBuf, 8);
    b.addiu(rCnt, rCnt, -8);
    b.addiu(rVal, rVal, 81);
    b.sll(rVal, rVal, 1);
    b.addu(rTmp, dict_base, rVal);
    b.lhu(rVal, 0, rTmp);
    b.b(done);

    b.bind(tag11);
    // tag 11 + 16 raw bits: escaped literal halfword.
    b.srl(rVal, rBuf, 16);
    b.sll(rBuf, rBuf, 16);
    b.addiu(rCnt, rCnt, -16);

    b.bind(done);
}

} // namespace

HandlerBuild
buildCodePackHandler(bool second_reg_file)
{
    ProcedureBuilder b(second_reg_file ? "codepack_handler_rf"
                                       : "codepack_handler");

    // Without a second register file every user register the handler
    // touches must be preserved across the exception.
    if (!second_reg_file) {
        for (unsigned i = 0; i < 8; ++i)
            b.sw(static_cast<uint8_t>(8 + i),
                 static_cast<int16_t>(-4 - 4 * i), Sp);
    }

    // Group base address = BADVA with the low 6 bits cleared.
    b.mfc0(rEnd, C0BadVa);
    b.srl(rEnd, rEnd, 6);
    b.sll(rEnd, rEnd, 6);

    // Mapping-table lookup: one packed 32-bit entry covers two groups
    // (bits [23:0] = even group byte offset, [31:24] = odd group delta).
    b.mfc0(rWord, C0DecompBase);
    b.subu(rSrc, rEnd, rWord);    // byte offset into decompressed region
    b.srl(rBuf, rSrc, 7);         // group-pair index
    b.sll(rBuf, rBuf, 2);         // map-table byte offset
    b.mfc0(rCnt, C0MapBase);
    b.addu(rBuf, rBuf, rCnt);
    b.lw(rVal, 0, rBuf);          // the extra memory access vs dictionary
    b.srl(rCnt, rVal, 24);        // odd group's delta
    b.sll(rVal, rVal, 8);
    b.srl(rVal, rVal, 8);         // even group's offset
    b.andi(rTmp, rSrc, 64);       // odd group in the pair?
    Label even_group = b.newLabel();
    b.beq(rTmp, Zero, even_group);
    b.addu(rVal, rVal, rCnt);
    b.bind(even_group);
    b.mfc0(rCnt, C0IndexBase);    // codeword stream base
    b.addu(rSrc, rVal, rCnt);     // source pointer

    b.addu(rDst, rEnd, Zero);     // destination = group base VA
    b.addiu(rEnd, rDst, 64);      // end of group
    b.mfc0(rHiDict, C0HighDictBase);
    b.mfc0(rLoDict, C0LowDictBase);
    b.addu(rBuf, Zero, Zero);     // bit buffer = 0
    b.addu(rCnt, Zero, Zero);     // bit count = 0

    Label group_loop = b.newLabel();
    b.bind(group_loop);
    emitDecodeHalf(b, rHiDict);
    b.sll(rWord, rVal, 16);
    emitDecodeHalf(b, rLoDict);
    b.or_(rWord, rWord, rVal);
    b.swic(rWord, 0, rDst);
    b.addiu(rDst, rDst, 4);
    b.bne(rDst, rEnd, group_loop);

    if (!second_reg_file) {
        for (unsigned i = 0; i < 8; ++i)
            b.lw(static_cast<uint8_t>(8 + i),
                 static_cast<int16_t>(-4 - 4 * i), Sp);
    }
    b.iret();

    HandlerBuild out;
    out.code = prog::assembleProcedure(b.take(), mem::HandlerRam::base);
    out.usesShadowRegs = second_reg_file;
    return out;
}

} // namespace rtd::runtime
