/**
 * @file
 * The dictionary decompression exception handler, transcribed from the
 * paper's Figure 2 ("L1 miss exception handler for dictionary
 * decompression method").
 */

#include "runtime/handlers.h"

#include "mem/handler_ram.h"
#include "program/builder.h"
#include "program/linker.h"
#include "support/bitops.h"
#include "support/logging.h"

namespace rtd::runtime {

using namespace rtd::isa;
using prog::Label;
using prog::ProcedureBuilder;

namespace {

/**
 * Figure 2, verbatim: saves r9-r12 to the user stack (r26/r27 are
 * reserved for the OS and need no saving), computes the index address
 * from the faulting address with shifts (no mapping table), then loops
 * over the line: load index, scale, indexed-load the dictionary entry,
 * swic it into the cache.
 *
 * Register use (paper comments):
 *   r9 : index address            r10: dictionary base
 *   r11: indices base, then index r12: next line addr (loop halt value)
 *   r26: decompressed base, then decompressed insn
 *   r27: insn address to decompress
 */
HandlerBuild
buildLooped(uint32_t line_bytes)
{
    RTDC_ASSERT(isPowerOfTwo(line_bytes) && line_bytes >= 8,
                "bad I-line size %u", line_bytes);
    uint8_t line_shift = static_cast<uint8_t>(floorLog2(line_bytes));

    ProcedureBuilder b("dict_handler");

    // Save regs to user stack.
    b.sw(9, -4, Sp);
    b.sw(10, -8, Sp);
    b.sw(11, -12, Sp);
    b.sw(12, -16, Sp);

    // Load system register inputs into general registers.
    b.mfc0(27, C0BadVa);       // the faulting PC
    b.mfc0(26, C0DecompBase);  // decompressed base
    b.mfc0(10, C0DictBase);    // dictionary base
    b.mfc0(11, C0IndexBase);   // indices base

    // Zero low bits to get the cache line address.
    b.srl(27, 27, line_shift);
    b.sll(27, 27, line_shift);

    // index_address = (BADVA - decomp_base) >> 1 + index_base
    b.sub(9, 27, 26);
    b.srl(9, 9, 1);
    b.add(9, 11, 9);

    // Next line address (stop when we reach it).
    b.addiu(12, 27, static_cast<int16_t>(line_bytes));

    Label loop = b.newLabel();
    b.bind(loop);
    b.lhu(11, 0, 9);       // put index in r11
    b.addiu(9, 9, 2);      // index_address++
    b.sll(11, 11, 2);      // scale for 4 B dictionary entry
    b.lwx(26, 11, 10);     // r26 holds the instruction
    b.swic(26, 0, 27);     // store word in cache
    b.addiu(27, 27, 4);    // advance insn address
    b.bne(27, 12, loop);

    // Restore registers and return.
    b.lw(9, -4, Sp);
    b.lw(10, -8, Sp);
    b.lw(11, -12, Sp);
    b.lw(12, -16, Sp);
    b.iret();

    HandlerBuild out;
    out.code = prog::assembleProcedure(b.take(), mem::HandlerRam::base);
    out.usesShadowRegs = false;
    return out;
}

/**
 * Second-register-file variant (section 4.1): the handler runs on the
 * shadow register file, so no registers are saved or restored, and the
 * extra registers let the loop be completely unrolled — eliminating the
 * two adds and the branch of each iteration.
 */
HandlerBuild
buildUnrolled(uint32_t line_bytes)
{
    RTDC_ASSERT(isPowerOfTwo(line_bytes) && line_bytes >= 8 &&
                line_bytes <= 256,
                "bad I-line size %u", line_bytes);
    uint8_t line_shift = static_cast<uint8_t>(floorLog2(line_bytes));
    unsigned words = line_bytes / 4;

    ProcedureBuilder b("dict_handler_rf");

    b.mfc0(27, C0BadVa);
    b.mfc0(26, C0DecompBase);
    b.mfc0(10, C0DictBase);
    b.mfc0(11, C0IndexBase);
    b.srl(27, 27, line_shift);
    b.sll(27, 27, line_shift);
    b.sub(9, 27, 26);
    b.srl(9, 9, 1);
    b.add(9, 11, 9);

    for (unsigned i = 0; i < words; ++i) {
        b.lhu(11, static_cast<int16_t>(i * 2), 9);
        b.sll(11, 11, 2);
        b.lwx(26, 11, 10);
        b.swic(26, static_cast<int16_t>(i * 4), 27);
    }
    b.iret();

    HandlerBuild out;
    out.code = prog::assembleProcedure(b.take(), mem::HandlerRam::base);
    out.usesShadowRegs = true;
    return out;
}

} // namespace

HandlerBuild
buildDictionaryHandler(bool second_reg_file, uint32_t line_bytes)
{
    return second_reg_file ? buildUnrolled(line_bytes)
                           : buildLooped(line_bytes);
}

HandlerBuild
buildHandler(compress::Scheme scheme, bool second_reg_file,
             uint32_t line_bytes)
{
    switch (scheme) {
      case compress::Scheme::Dictionary:
        return buildDictionaryHandler(second_reg_file, line_bytes);
      case compress::Scheme::CodePack:
        RTDC_ASSERT(line_bytes == 32,
                    "the CodePack handler assumes 32 B I-lines");
        return buildCodePackHandler(second_reg_file);
      case compress::Scheme::HuffmanLine:
        return buildHuffmanHandler(second_reg_file, line_bytes);
      case compress::Scheme::ProcLzrw1:
        panic("use proccache::buildLzrw1Handler() for the "
              "procedure-based scheme");
      case compress::Scheme::None:
        break;
    }
    panic("no handler for scheme 'native'");
}

} // namespace rtd::runtime
