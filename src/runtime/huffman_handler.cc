/**
 * @file
 * The Huffman-line decompression exception handler.
 *
 * Decodes one CCRP-style Huffman-coded cache line ([Wolfe92]) with a
 * bit-serial canonical decoder: the codeword is extended one bit at a
 * time while walking the per-length code counts, then the symbol is
 * fetched from the canonical permutation. At roughly 9 instructions per
 * *bit* this is the slowest of the line handlers — the price of a
 * format designed for hardware decode, and a demonstration that the
 * software-managed I-cache can host any algorithm.
 *
 * Decode-table layout (see HuffmanLine::buildImage):
 *   tab[0..15]   count of codes of length 1..16 (bytes)
 *   tab[16..]    symbols sorted by (length, value)
 */

#include "runtime/handlers.h"

#include "mem/handler_ram.h"
#include "program/builder.h"
#include "program/linker.h"
#include "support/bitops.h"
#include "support/logging.h"

namespace rtd::runtime {

using namespace rtd::isa;
using prog::Label;
using prog::ProcedureBuilder;

namespace {

/**
 * Register allocation:
 *   r8 : codeword source pointer     r9 : bit buffer (left-aligned)
 *   r10: valid bit count             r11: destination address
 *   r12: decode-table base           r13: line end address
 *   r14: word under assembly         r15: count-table walk pointer
 *   r24: code under extension        r25: first code of current length
 *   r26: symbol index accumulator    r27: scratch
 */
constexpr uint8_t rSrc = 8;
constexpr uint8_t rBuf = 9;
constexpr uint8_t rCnt = 10;
constexpr uint8_t rDst = 11;
constexpr uint8_t rTab = 12;
constexpr uint8_t rEnd = 13;
constexpr uint8_t rWord = 14;
constexpr uint8_t rLen = 15;
constexpr uint8_t rCode = T8;
constexpr uint8_t rFirst = T9;
constexpr uint8_t rIdx = K0;
constexpr uint8_t rTmp = K1;

/** Decode one byte into the top byte of rWord (word >>= 8 first). */
void
emitDecodeByte(ProcedureBuilder &b)
{
    Label refill = b.newLabel();
    Label refilled = b.newLabel();
    Label bit_loop = b.newLabel();
    Label found = b.newLabel();

    // Top up the bit buffer: the longest code is 15 bits.
    b.bind(refill);
    b.slti(rTmp, rCnt, 15);
    b.beq(rTmp, Zero, refilled);
    b.lbu(rTmp, 0, rSrc);
    b.addiu(rSrc, rSrc, 1);
    b.addiu(rLen, Zero, 24);
    b.subu(rLen, rLen, rCnt);
    b.sllv(rTmp, rTmp, rLen);
    b.or_(rBuf, rBuf, rTmp);
    b.addiu(rCnt, rCnt, 8);
    b.b(refill);
    b.bind(refilled);

    // Canonical decode state.
    b.addu(rCode, Zero, Zero);   // code = 0
    b.addu(rFirst, Zero, Zero);  // first code of length = 0
    b.addu(rIdx, Zero, Zero);    // symbol index accumulator
    b.addu(rLen, rTab, Zero);    // count-table walk pointer

    b.bind(bit_loop);
    b.srl(rTmp, rBuf, 31);       // next bit
    b.sll(rBuf, rBuf, 1);
    b.addiu(rCnt, rCnt, -1);
    b.sll(rCode, rCode, 1);
    b.or_(rCode, rCode, rTmp);
    b.lbu(rTmp, 0, rLen);        // codes of this length
    b.addiu(rLen, rLen, 1);
    b.addu(rIdx, rIdx, rTmp);    // idx += count (corrected when found)
    b.addu(rFirst, rFirst, rTmp);
    b.sltu(rTmp, rCode, rFirst); // code < first+count: found
    b.bne(rTmp, Zero, found);
    b.sll(rFirst, rFirst, 1);
    b.b(bit_loop);

    b.bind(found);
    // symbol offset = idx + code - first (idx/first both over-advanced
    // by this length's count, so the correction cancels).
    b.subu(rTmp, rCode, rFirst);
    b.addu(rTmp, rIdx, rTmp);
    b.addu(rTmp, rTab, rTmp);
    b.lbu(rTmp, 16, rTmp);       // the decoded byte
    // Merge little-endian: after four bytes the first sits in bits 7..0.
    b.srl(rWord, rWord, 8);
    b.sll(rTmp, rTmp, 24);
    b.or_(rWord, rWord, rTmp);
}

} // namespace

HandlerBuild
buildHuffmanHandler(bool second_reg_file, uint32_t line_bytes)
{
    RTDC_ASSERT(isPowerOfTwo(line_bytes) && line_bytes >= 8,
                "bad I-line size %u", line_bytes);
    auto line_shift = static_cast<uint8_t>(floorLog2(line_bytes));

    ProcedureBuilder b(second_reg_file ? "huffman_handler_rf"
                                       : "huffman_handler");

    if (!second_reg_file) {
        for (unsigned i = 0; i < 8; ++i)
            b.sw(static_cast<uint8_t>(8 + i),
                 static_cast<int16_t>(-4 - 4 * i), Sp);
        b.sw(T8, -36, Sp);
        b.sw(T9, -40, Sp);
    }

    // Missed line address.
    b.mfc0(rDst, C0BadVa);
    b.srl(rDst, rDst, line_shift);
    b.sll(rDst, rDst, line_shift);

    // Line address table lookup (packed pairs, as in CodePack's index
    // table): entry = LAT[line_index/2].
    b.mfc0(rTmp, C0DecompBase);
    b.subu(rSrc, rDst, rTmp);            // region byte offset
    b.srl(rBuf, rSrc, line_shift + 1);   // line pair index
    b.sll(rBuf, rBuf, 2);
    b.mfc0(rCnt, C0MapBase);
    b.addu(rBuf, rBuf, rCnt);
    b.lw(rWord, 0, rBuf);                // packed LAT entry
    b.srl(rCnt, rWord, 24);              // odd-line delta
    b.sll(rWord, rWord, 8);
    b.srl(rWord, rWord, 8);              // even-line offset
    b.andi(rTmp, rSrc,
           static_cast<uint16_t>(line_bytes));  // odd line in the pair?
    Label even_line = b.newLabel();
    b.beq(rTmp, Zero, even_line);
    b.addu(rWord, rWord, rCnt);
    b.bind(even_line);
    b.mfc0(rCnt, C0IndexBase);
    b.addu(rSrc, rWord, rCnt);           // codeword source pointer

    b.mfc0(rTab, C0DictBase);            // decode tables
    b.addiu(rEnd, rDst, static_cast<int16_t>(line_bytes));
    b.addu(rBuf, Zero, Zero);
    b.addu(rCnt, Zero, Zero);

    Label word_loop = b.newLabel();
    b.bind(word_loop);
    for (int byte = 0; byte < 4; ++byte)
        emitDecodeByte(b);
    b.swic(rWord, 0, rDst);
    b.addiu(rDst, rDst, 4);
    b.bne(rDst, rEnd, word_loop);

    if (!second_reg_file) {
        for (unsigned i = 0; i < 8; ++i)
            b.lw(static_cast<uint8_t>(8 + i),
                 static_cast<int16_t>(-4 - 4 * i), Sp);
        b.lw(T8, -36, Sp);
        b.lw(T9, -40, Sp);
    }
    b.iret();

    HandlerBuild out;
    out.code = prog::assembleProcedure(b.take(), mem::HandlerRam::base);
    out.usesShadowRegs = second_reg_file;
    return out;
}

} // namespace rtd::runtime
