/**
 * @file
 * Regenerates the paper's Table 2: per-benchmark dynamic instruction
 * counts, non-speculative 16 KB I-cache miss ratio, original and
 * compressed sizes, and the dictionary / CodePack / LZRW1 compression
 * ratios of the .text section.
 *
 * Paper numbers are printed next to each measurement. Absolute dynamic
 * instruction counts are scaled down ~40x (see DESIGN.md); everything
 * else is directly comparable.
 */

#include <cstdio>

#include "../bench/common.h"
#include "compress/codepack.h"
#include "compress/dictionary.h"
#include "support/table.h"

using namespace rtd;

int
main()
{
    setInformEnabled(false);
    std::printf("=== Table 2: compression ratio of .text section ===\n");
    double scale = bench::announceScale();
    cpu::CpuConfig machine = core::paperMachine();
    machine.verifyDecompression = false;  // self-checks stay in tests
    bench::printMachineHeader(machine);

    Table table({"benchmark", "dyn insns", "miss% (paper)", "orig bytes",
                 "dict bytes", "cp bytes", "dict% (paper)", "cp% (paper)",
                 "lzrw1% (paper)"});

    for (const auto &benchmark : workload::paperBenchmarks()) {
        prog::Program program = bench::generateBenchmark(benchmark, scale);

        core::SystemResult native = core::runNative(program, machine);
        core::SystemResult dict = core::runCompressed(
            program, compress::Scheme::Dictionary, false, machine);
        core::SystemResult cp = core::runCompressed(
            program, compress::Scheme::CodePack, false, machine);
        double lz = core::lzrw1TextRatio(program);

        auto paper = [](double measured, double published) {
            return fmtDouble(measured, 1) + " (" +
                   fmtDouble(published, 1) + ")";
        };
        table.addRow({
            benchmark.spec.name,
            fmtCount(native.stats.userInsns),
            fmtDouble(100 * native.stats.icacheMissRatio(), 2) + " (" +
                fmtDouble(benchmark.paperMissRatio, 2) + ")",
            fmtCount(native.originalTextBytes),
            fmtCount(dict.compressedPayloadBytes),
            fmtCount(cp.compressedPayloadBytes),
            paper(100 * dict.compressionRatio(), benchmark.paperDictRatio),
            paper(100 * cp.compressionRatio(),
                  benchmark.paperCodePackRatio),
            paper(lz, benchmark.paperLzrw1Ratio),
        });
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nNote: dynamic instruction counts are intentionally "
                "~40x shorter than the paper's shortened runs;\n"
                "compression ratios and miss ratios are directly "
                "comparable (paper values in parentheses).\n");
    return 0;
}
