/**
 * @file
 * Regenerates the paper's Table 3: execution-time slowdown of fully
 * compressed programs relative to native code, for dictionary (D),
 * dictionary + second register file (D+RF), CodePack (CP), and
 * CodePack + second register file (CP+RF), on the 16 KB I-cache
 * baseline machine.
 */

#include <cstdio>

#include "../bench/common.h"
#include "support/table.h"

using namespace rtd;
using compress::Scheme;

int
main()
{
    setInformEnabled(false);
    std::printf("=== Table 3: slowdown compared to native code ===\n");
    double scale = bench::announceScale();
    cpu::CpuConfig machine = core::paperMachine();
    bench::printMachineHeader(machine);

    Table table({"benchmark", "D (paper)", "D+RF (paper)", "CP (paper)",
                 "CP+RF (paper)"});

    for (const auto &benchmark : workload::paperBenchmarks()) {
        prog::Program program = bench::generateBenchmark(benchmark, scale);
        core::SystemResult native = core::runNative(program, machine);

        auto cell = [&](Scheme scheme, bool rf, double published) {
            core::SystemResult run =
                core::runCompressed(program, scheme, rf, machine);
            return fmtDouble(core::slowdown(run, native), 2) + " (" +
                   fmtDouble(published, 2) + ")";
        };
        table.addRow({
            benchmark.spec.name,
            cell(Scheme::Dictionary, false, benchmark.paperSlowdownD),
            cell(Scheme::Dictionary, true, benchmark.paperSlowdownDRf),
            cell(Scheme::CodePack, false, benchmark.paperSlowdownCp),
            cell(Scheme::CodePack, true, benchmark.paperSlowdownCpRf),
        });
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape: D < 3x everywhere; CP < 18x; the "
                "second register file\ncuts dictionary overhead by "
                "nearly half but barely moves CodePack (section 5.2).\n");
    return 0;
}
