/**
 * @file
 * Regenerates the paper's Table 3: execution-time slowdown of fully
 * compressed programs relative to native code, for dictionary (D),
 * dictionary + second register file (D+RF), CodePack (CP), and
 * CodePack + second register file (CP+RF), on the 16 KB I-cache
 * baseline machine.
 *
 * Runs on the sweep harness: jobs execute across all cores (RTDC_JOBS
 * overrides the worker count), the printed table is identical to the
 * pre-harness serial output, and the result rows are additionally
 * written to BENCH_table3.json.
 */

#include "harness/sweeps.h"
#include "support/logging.h"

int
main()
{
    rtd::setInformEnabled(false);
    return rtd::harness::runSweep(
        "table3", rtd::harness::SweepOptions::fromEnv());
}
