/**
 * @file
 * Ablation: where does the decompression handler's time go?
 *
 * Two experiments:
 *  1. Handler data accesses cached vs uncached. The handler's index /
 *     mapping-table / dictionary loads normally go through the D-cache
 *     (polluting it but exploiting dictionary locality); the uncached
 *     variant pays a full bus transaction per load — isolating how much
 *     of the handler's cost is instruction execution vs memory traffic.
 *  2. D-cache size sweep, which modulates how much of the dictionary
 *     stays resident between misses.
 */

#include <cstdio>

#include "../bench/common.h"
#include "support/table.h"

using namespace rtd;
using compress::Scheme;

int
main()
{
    setInformEnabled(false);
    std::printf("=== Ablation: handler data-access path ===\n");
    double scale = bench::announceScale();

    const char *names[] = {"cc1", "go", "perl"};

    std::printf("\n--- cached vs uncached handler loads ---\n");
    Table cached_table({"benchmark", "scheme", "D$ cached", "uncached",
                        "penalty"});
    for (const char *name : names) {
        const auto &benchmark = workload::paperBenchmark(name);
        prog::Program program = bench::generateBenchmark(benchmark, scale);
        cpu::CpuConfig machine = core::paperMachine();
        core::SystemResult native = core::runNative(program, machine);
        for (Scheme scheme : {Scheme::Dictionary, Scheme::CodePack}) {
            core::SystemResult cached =
                core::runCompressed(program, scheme, false, machine);
            cpu::CpuConfig uncached_machine = machine;
            uncached_machine.handlerDataUncached = true;
            core::SystemResult uncached = core::runCompressed(
                program, scheme, false, uncached_machine);
            double s_cached = core::slowdown(cached, native);
            double s_uncached = core::slowdown(uncached, native);
            cached_table.addRow({
                name,
                compress::schemeName(scheme),
                fmtDouble(s_cached, 2),
                fmtDouble(s_uncached, 2),
                fmtDouble(s_uncached / s_cached, 2) + "x",
            });
        }
    }
    std::printf("%s", cached_table.render().c_str());

    std::printf("\n--- D-cache size (dictionary residency) ---\n");
    Table dsize_table({"benchmark", "D$", "D slowdown", "handler D-miss "
                       "share"});
    for (const char *name : names) {
        const auto &benchmark = workload::paperBenchmark(name);
        prog::Program program = bench::generateBenchmark(benchmark, scale);
        for (uint32_t kb : {4u, 8u, 32u}) {
            cpu::CpuConfig machine = core::paperMachine();
            machine.dcache.sizeBytes = kb * 1024;
            core::SystemResult native = core::runNative(program, machine);
            core::SystemResult dict = core::runCompressed(
                program, Scheme::Dictionary, false, machine);
            // D-misses added by decompression, per exception.
            double extra =
                dict.stats.exceptions
                    ? static_cast<double>(dict.stats.dcacheMisses -
                                          native.stats.dcacheMisses) /
                          static_cast<double>(dict.stats.exceptions)
                    : 0.0;
            dsize_table.addRow({
                name,
                std::to_string(kb) + "KB",
                fmtDouble(core::slowdown(dict, native), 2),
                fmtDouble(extra, 2) + " miss/exc",
            });
        }
    }
    std::printf("%s", dsize_table.render().c_str());
    std::printf("\nCaching the decompressor's tables matters: popular "
                "dictionary entries stay\nresident, which is a large "
                "part of why the dictionary handler beats CodePack.\n");
    return 0;
}
