/**
 * @file
 * Ablation: where does the decompression handler's time go?
 *
 * Two experiments:
 *  1. Handler data accesses cached vs uncached. The handler's index /
 *     mapping-table / dictionary loads normally go through the D-cache
 *     (polluting it but exploiting dictionary locality); the uncached
 *     variant pays a full bus transaction per load — isolating how much
 *     of the handler's cost is instruction execution vs memory traffic.
 *  2. D-cache size sweep, which modulates how much of the dictionary
 *     stays resident between misses.
 *
 * Runs on the sweep harness; rows are also written to
 * BENCH_ablation_handler.json.
 */

#include "harness/sweeps.h"
#include "support/logging.h"

int
main()
{
    rtd::setInformEnabled(false);
    return rtd::harness::runSweep(
        "ablation_handler", rtd::harness::SweepOptions::fromEnv());
}
