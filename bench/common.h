/**
 * @file
 * Shared helpers for the bench binaries. Each bench regenerates one of
 * the paper's tables or figures by running full simulations and printing
 * paper-vs-measured rows.
 *
 * The text formatting itself lives in the sweep harness
 * (harness/result_sink.h) so that the machine configuration is defined
 * once and emitted in both the human header form and the JSON form the
 * harness's result sinks write; these wrappers keep the pre-harness
 * bench binaries source-compatible.
 */

#ifndef RTDC_BENCH_COMMON_H
#define RTDC_BENCH_COMMON_H

#include <cstdio>

#include "core/experiment.h"
#include "harness/result_sink.h"
#include "support/logging.h"
#include "workload/benchmarks.h"
#include "workload/generator.h"

namespace rtd::bench {

/** Print the Table 1 machine configuration this bench simulates. */
inline void
printMachineHeader(const cpu::CpuConfig &machine)
{
    std::fputs(harness::machineHeaderLine(machine).c_str(), stdout);
}

/** Print the dynamic-scale banner (RTDC_BENCH_SCALE). */
inline double
announceScale()
{
    return harness::announceScale(core::benchScaleFromEnv());
}

/** Generate one paper benchmark's program at the given dynamic scale. */
inline prog::Program
generateBenchmark(const workload::PaperBenchmark &benchmark, double scale)
{
    workload::WorkloadGenerator gen(
        workload::scaledSpec(benchmark, scale));
    return gen.generate();
}

} // namespace rtd::bench

#endif // RTDC_BENCH_COMMON_H
