/**
 * @file
 * Shared helpers for the bench binaries. Each bench regenerates one of
 * the paper's tables or figures by running full simulations and printing
 * paper-vs-measured rows.
 */

#ifndef RTDC_BENCH_COMMON_H
#define RTDC_BENCH_COMMON_H

#include <cstdio>

#include "core/experiment.h"
#include "support/logging.h"
#include "workload/benchmarks.h"
#include "workload/generator.h"

namespace rtd::bench {

/** Print the Table 1 machine configuration this bench simulates. */
inline void
printMachineHeader(const cpu::CpuConfig &machine)
{
    std::printf("machine: 1-wide in-order | I$ %uKB/%uB/%u-way LRU | "
                "D$ %uKB/%uB/%u-way LRU | bimodal %u | mem %u-cycle "
                "latency, %u-cycle rate, %u-bit bus\n",
                machine.icache.sizeBytes / 1024, machine.icache.lineBytes,
                machine.icache.assoc, machine.dcache.sizeBytes / 1024,
                machine.dcache.lineBytes, machine.dcache.assoc,
                machine.predictorEntries,
                machine.memTiming.firstAccessCycles,
                machine.memTiming.burstRateCycles,
                machine.memTiming.busBytes * 8);
}

/** Print the dynamic-scale banner (RTDC_BENCH_SCALE). */
inline double
announceScale()
{
    double scale = core::benchScaleFromEnv();
    if (scale != 1.0)
        std::printf("dynamic-length scale: %.3fx (RTDC_BENCH_SCALE)\n",
                    scale);
    return scale;
}

/** Generate one paper benchmark's program at the given dynamic scale. */
inline prog::Program
generateBenchmark(const workload::PaperBenchmark &benchmark, double scale)
{
    workload::WorkloadGenerator gen(
        workload::scaledSpec(benchmark, scale));
    return gen.generate();
}

} // namespace rtd::bench

#endif // RTDC_BENCH_COMMON_H
