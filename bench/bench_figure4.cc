/**
 * @file
 * Regenerates the paper's Figure 4: the effect of the I-cache miss ratio
 * on execution time. Every benchmark is simulated with 4 KB, 16 KB and
 * 64 KB instruction caches under (a) dictionary and (b) CodePack
 * compression, each with and without the second register file; each data
 * point is (native miss ratio at that cache size, slowdown vs native at
 * that cache size).
 *
 * Expected shape (paper section 5.2): for dictionary, points below a 1%
 * miss ratio stay under a 2x slowdown; for CodePack, under 5x. Larger
 * caches pull every benchmark down the curve.
 *
 * Runs on the sweep harness: jobs execute across all cores (RTDC_JOBS
 * overrides the worker count), the printed tables are identical to the
 * pre-harness serial output, and the result rows are additionally
 * written to BENCH_figure4.json.
 */

#include "harness/sweeps.h"
#include "support/logging.h"

int
main()
{
    rtd::setInformEnabled(false);
    return rtd::harness::runSweep(
        "figure4", rtd::harness::SweepOptions::fromEnv());
}
