/**
 * @file
 * Regenerates the paper's Figure 4: the effect of the I-cache miss ratio
 * on execution time. Every benchmark is simulated with 4 KB, 16 KB and
 * 64 KB instruction caches under (a) dictionary and (b) CodePack
 * compression, each with and without the second register file; each data
 * point is (native miss ratio at that cache size, slowdown vs native at
 * that cache size).
 *
 * Expected shape (paper section 5.2): for dictionary, points below a 1%
 * miss ratio stay under a 2x slowdown; for CodePack, under 5x. Larger
 * caches pull every benchmark down the curve.
 */

#include <cstdio>

#include "../bench/common.h"
#include "support/table.h"

using namespace rtd;
using compress::Scheme;

int
main()
{
    setInformEnabled(false);
    std::printf("=== Figure 4: I-cache miss ratio vs execution time ===\n");
    double scale = bench::announceScale();

    const uint32_t cache_sizes[] = {4 * 1024, 16 * 1024, 64 * 1024};

    for (Scheme scheme : {Scheme::Dictionary, Scheme::CodePack}) {
        std::printf("\n--- Figure 4%s: %s ---\n",
                    scheme == Scheme::Dictionary ? "a" : "b",
                    compress::schemeName(scheme));
        Table table({"benchmark", "I$", "miss ratio", "slowdown",
                     "slowdown+RF"});
        for (const auto &benchmark : workload::paperBenchmarks()) {
            prog::Program program =
                bench::generateBenchmark(benchmark, scale);
            for (uint32_t icache_bytes : cache_sizes) {
                cpu::CpuConfig machine = core::paperMachine(icache_bytes);
                core::SystemResult native =
                    core::runNative(program, machine);
                core::SystemResult base = core::runCompressed(
                    program, scheme, false, machine);
                core::SystemResult rf = core::runCompressed(
                    program, scheme, true, machine);
                table.addRow({
                    benchmark.spec.name,
                    std::to_string(icache_bytes / 1024) + "KB",
                    fmtPercent(100 * native.stats.icacheMissRatio(), 3),
                    fmtDouble(core::slowdown(base, native), 2),
                    fmtDouble(core::slowdown(rf, native), 2),
                });
            }
        }
        std::printf("%s", table.render().c_str());
    }
    std::printf("\nExpected shape: slowdown grows with miss ratio; "
                "below 1%% miss the dictionary stays\nunder ~2x and "
                "CodePack under ~5x; the 64 KB cache pulls every "
                "benchmark toward 1x.\n");
    return 0;
}
