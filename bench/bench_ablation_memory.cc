/**
 * @file
 * Ablation: main-memory speed. The paper's motivation for software
 * decompression assumes slow embedded memory (10-cycle first access);
 * this sweep shows how the decompression overhead scales as memory gets
 * faster or slower. Faster memory shrinks the *native* miss cost more
 * than the handler cost (the handler burns cycles executing
 * instructions, not waiting on the bus), so slowdowns grow as memory
 * gets faster — the interesting inversion this ablation quantifies.
 */

#include <cstdio>

#include "../bench/common.h"
#include "support/table.h"

using namespace rtd;
using compress::Scheme;

int
main()
{
    setInformEnabled(false);
    std::printf("=== Ablation: memory latency vs decompression "
                "overhead ===\n");
    double scale = bench::announceScale();

    const char *names[] = {"go", "perl", "mpeg2enc"};
    Table table({"benchmark", "mem latency", "native CPI", "D slowdown",
                 "CP slowdown"});
    for (const char *name : names) {
        const auto &benchmark = workload::paperBenchmark(name);
        prog::Program program = bench::generateBenchmark(benchmark, scale);
        for (unsigned latency : {5u, 10u, 20u, 40u}) {
            cpu::CpuConfig machine = core::paperMachine();
            machine.memTiming.firstAccessCycles = latency;
            core::SystemResult native = core::runNative(program, machine);
            core::SystemResult dict = core::runCompressed(
                program, Scheme::Dictionary, false, machine);
            core::SystemResult cp = core::runCompressed(
                program, Scheme::CodePack, false, machine);
            table.addRow({
                name,
                std::to_string(latency) + " cyc",
                fmtDouble(native.stats.cpi(), 2),
                fmtDouble(core::slowdown(dict, native), 2),
                fmtDouble(core::slowdown(cp, native), 2),
            });
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape: relative slowdown *rises* as memory "
                "gets faster, because the\nhardware fill path speeds up "
                "while the handler's instruction execution does not.\n");
    return 0;
}
