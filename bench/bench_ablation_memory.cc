/**
 * @file
 * Ablation: main-memory speed. The paper's motivation for software
 * decompression assumes slow embedded memory (10-cycle first access);
 * this sweep shows how the decompression overhead scales as memory gets
 * faster or slower. Faster memory shrinks the *native* miss cost more
 * than the handler cost (the handler burns cycles executing
 * instructions, not waiting on the bus), so slowdowns grow as memory
 * gets faster — the interesting inversion this ablation quantifies.
 *
 * Runs on the sweep harness; rows are also written to
 * BENCH_ablation_memory.json.
 */

#include "harness/sweeps.h"
#include "support/logging.h"

int
main()
{
    rtd::setInformEnabled(false);
    return rtd::harness::runSweep(
        "ablation_memory", rtd::harness::SweepOptions::fromEnv());
}
