/**
 * @file
 * Host simulation-speed bench: wall-clock MIPS (millions of simulated
 * instructions per second of host time) for native, dictionary and
 * CodePack runs of the cc1 stand-in, across the four execution
 * engines: the legacy decode-per-fetch interpreter, the predecoded
 * engine (CpuConfig::predecode), the block-structured engine on top of
 * it (CpuConfig::blockExec), and the superblock/trace engine with
 * threaded dispatch on top of that (CpuConfig::superblockExec). This
 * establishes the perf trajectory the ROADMAP asks for: future PRs
 * report speedups against the recorded baseline.
 *
 * Unlike every other bench, the emitted `BENCH_simperf.json` carries
 * wall-clock fields by design, so it has its own schema (`"sweep":
 * "simperf"`, rows with `wall_seconds`/`host_mips`) and is explicitly
 * *excluded* from the harness's byte-identical-rows determinism
 * contract. The simulated results themselves stay deterministic: each
 * scheme's four runs are asserted identical on every RunStats counter
 * before any timing is reported.
 *
 * `--smoke` (used by the `simperf_smoke` ctest) additionally re-parses
 * the written JSON and fails unless every row has the expected keys and
 * a nonzero MIPS figure — never a performance threshold.
 *
 * `--parity` (used by the `superblock_parity_smoke` ctest) runs every
 * combination of the three engine flags — all eight, not just the four
 * named engines, so half-enabled states are covered too — across all
 * five schemes, asserts full RunStats identity, and writes nothing. It
 * exits nonzero naming the first diverging field, scheme and flag
 * combination: a fast, deterministic guard on the invalidation and
 * relink paths.
 *
 * `--observe` times the default engine with SystemConfig::observe off
 * and on over the same BuiltImage, asserts the simulated RunStats are
 * identical either way, and reports the observation overhead — the
 * measured cost of the src/obs/ hook sites when someone *is* watching.
 * (When nobody is, the hooks are one never-taken branch each; the
 * driver-level before/after guard is the observe-off MIPS this bench
 * already reports.)
 *
 * Decompression self-verification (CpuConfig::verifyDecompression) is
 * off for all timed runs: the fetch paths time the simulator, not the
 * simulator's self-checks.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "../bench/common.h"
#include "compress/compressed_image.h"
#include "core/system.h"
#include "harness/json.h"
#include "harness/result_sink.h"
#include "support/logging.h"
#include "support/table.h"

namespace {

using namespace rtd;
using compress::Scheme;

/** The four execution engines, in baseline-to-fastest order. */
struct EngineConfig
{
    const char *name;
    bool predecode;
    bool blockExec;
    bool superblockExec;
};

constexpr EngineConfig kEngines[] = {
    {"legacy", false, false, false},
    {"predecode", true, false, false},
    {"blocks", true, true, false},
    {"superblock", true, true, true},
};
constexpr int kNumEngines = 4;

struct TimedRun
{
    core::SystemResult result;
    double wallSeconds = 0.0;
    double hostMips = 0.0;
};

/** One timed simulation (construction excluded from the clock). */
void
timeOnce(const std::shared_ptr<const core::BuiltImage> &built,
         const core::SystemConfig &config, bool first, TimedRun &best)
{
    core::System system(built, config);
    auto start = std::chrono::steady_clock::now();
    core::SystemResult result = system.run();
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (first || elapsed.count() < best.wallSeconds) {
        best.result = std::move(result);
        best.wallSeconds = elapsed.count();
    }
}

void
finishMips(TimedRun &run)
{
    uint64_t insns =
        run.result.stats.userInsns + run.result.stats.handlerInsns;
    if (run.wallSeconds > 0.0)
        run.hostMips = static_cast<double>(insns) / 1e6 / run.wallSeconds;
}

/**
 * Time all four engines over the same BuiltImage, keeping each side's
 * fastest wall time (the standard noise-robust estimator: interference
 * only ever slows a run down). Repetitions are interleaved
 * legacy/predecode/blocks/superblock so a sustained slow period on the
 * host hits every engine rather than biasing the speedups. The
 * simulated results are identical across engines and reps.
 */
void
timedQuad(const std::shared_ptr<const core::BuiltImage> &built,
          core::SystemConfig config, int reps, TimedRun out[kNumEngines])
{
    for (int i = 0; i < reps; ++i) {
        for (int e = 0; e < kNumEngines; ++e) {
            config.cpu.predecode = kEngines[e].predecode;
            config.cpu.blockExec = kEngines[e].blockExec;
            config.cpu.superblockExec = kEngines[e].superblockExec;
            timeOnce(built, config, i == 0, out[e]);
        }
    }
    for (int e = 0; e < kNumEngines; ++e)
        finishMips(out[e]);
}

/**
 * Every RunStats counter must be independent of the execution engine:
 * the engines are host-side memoization only.
 */
void
assertParity(const cpu::RunStats &a, const cpu::RunStats &b,
             const char *scheme, const char *engine)
{
    struct Field
    {
        const char *name;
        uint64_t lhs, rhs;
    };
    const Field fields[] = {
        {"cycles", a.cycles, b.cycles},
        {"user_insns", a.userInsns, b.userInsns},
        {"handler_insns", a.handlerInsns, b.handlerInsns},
        {"icache_accesses", a.icacheAccesses, b.icacheAccesses},
        {"icache_misses", a.icacheMisses, b.icacheMisses},
        {"compressed_misses", a.compressedMisses, b.compressedMisses},
        {"native_misses", a.nativeMisses, b.nativeMisses},
        {"dcache_accesses", a.dcacheAccesses, b.dcacheAccesses},
        {"dcache_misses", a.dcacheMisses, b.dcacheMisses},
        {"writebacks", a.writebacks, b.writebacks},
        {"branch_lookups", a.branchLookups, b.branchLookups},
        {"branch_mispredicts", a.branchMispredicts, b.branchMispredicts},
        {"load_use_stalls", a.loadUseStalls, b.loadUseStalls},
        {"exceptions", a.exceptions, b.exceptions},
        {"proc_faults", a.procFaults, b.procFaults},
        {"proc_evictions", a.procEvictions, b.procEvictions},
        {"proc_compacted_bytes", a.procCompactedBytes, b.procCompactedBytes},
        {"proc_decompressed_bytes", a.procDecompressedBytes,
         b.procDecompressedBytes},
        {"machine_checks", a.machineChecks, b.machineChecks},
        {"integrity_retries", a.integrityRetries, b.integrityRetries},
        {"machine_check_halt", a.machineCheckHalt, b.machineCheckHalt},
        {"result_value", a.resultValue, b.resultValue},
        {"halted", a.halted, b.halted},
    };
    for (const Field &f : fields) {
        if (f.lhs != f.rhs) {
            fatal("%s/%s: engines diverged on %s (%llu vs %llu)", scheme,
                  engine, f.name, static_cast<unsigned long long>(f.lhs),
                  static_cast<unsigned long long>(f.rhs));
        }
    }
}

/** Validate the smoke-mode JSON schema; returns false with a message. */
bool
validateJson(const std::string &path, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    harness::Json doc;
    if (!harness::Json::parse(buf.str(), &doc, &error))
        return false;
    const harness::Json *sweep = doc.find("sweep");
    if (!sweep || sweep->asString() != "simperf") {
        error = "missing sweep name";
        return false;
    }
    const harness::Json *rows = doc.find("rows");
    if (!rows || rows->size() == 0) {
        error = "no rows";
        return false;
    }
    bool sawBlocks = false;
    bool sawSuperblock = false;
    for (size_t i = 0; i < rows->size(); ++i) {
        const harness::Json &row = rows->at(i);
        for (const char *key :
             {"scheme", "engine", "predecode", "block_exec",
              "superblock_exec", "user_insns", "handler_insns",
              "wall_seconds", "host_mips"}) {
            if (!row.find(key)) {
                error = std::string("row missing key ") + key;
                return false;
            }
        }
        if (row.get("host_mips").asDouble() <= 0.0) {
            error = "zero host_mips";
            return false;
        }
        if (row.get("superblock_exec").asBool()) {
            sawSuperblock = true;
            if (!row.find("speedup_vs_blocks")) {
                error = "superblock row missing speedup_vs_blocks";
                return false;
            }
        } else if (row.get("block_exec").asBool()) {
            sawBlocks = true;
            if (!row.find("speedup_vs_predecode")) {
                error = "block row missing speedup_vs_predecode";
                return false;
            }
        }
    }
    if (!sawBlocks) {
        error = "no block_exec rows";
        return false;
    }
    if (!sawSuperblock) {
        error = "no superblock_exec rows";
        return false;
    }
    return true;
}

/**
 * --observe: time the default engine with observation off vs on, assert
 * the simulated results are identical, report the overhead.
 */
int
runObserve(double scale)
{
    prog::Program program = bench::generateBenchmark(
        workload::paperBenchmark("cc1"), scale);
    const int reps = 5;
    for (Scheme scheme : {Scheme::None, Scheme::Dictionary}) {
        core::SystemConfig config;
        config.cpu = core::paperMachine();
        config.cpu.verifyDecompression = false;
        config.scheme = scheme;
        auto built = std::make_shared<const core::BuiltImage>(
            core::buildImage(program, config));

        TimedRun off, on;
        for (int i = 0; i < reps; ++i) {
            config.observe.enabled = false;
            timeOnce(built, config, i == 0, off);
            config.observe.enabled = true;
            timeOnce(built, config, i == 0, on);
        }
        finishMips(off);
        finishMips(on);
        assertParity(on.result.stats, off.result.stats,
                     compress::schemeName(scheme), "observed");
        double overhead =
            off.hostMips > 0.0 && on.hostMips > 0.0
                ? (off.hostMips / on.hostMips - 1.0) * 100.0
                : 0.0;
        std::printf("observe ok: %-10s RunStats identical; host MIPS "
                    "%7.1f off / %7.1f on (%+.1f%% when watching)\n",
                    compress::schemeName(scheme), off.hostMips,
                    on.hostMips, overhead);
    }
    return 0;
}

/**
 * --parity: one run per engine-flag combination per scheme, full
 * RunStats identity. All eight (predecode, blockExec, superblockExec)
 * combinations run, not just the four named engines: half-enabled
 * states (e.g. superblockExec without blockExec) must fall back to the
 * slower path with identical results, or a config typo in a sweep
 * would silently change the physics.
 */
int
runParity(double scale)
{
    prog::Program program = bench::generateBenchmark(
        workload::paperBenchmark("cc1"), scale);
    for (Scheme scheme :
         {Scheme::None, Scheme::Dictionary, Scheme::CodePack,
          Scheme::ProcLzrw1, Scheme::HuffmanLine}) {
        core::SystemConfig config;
        config.cpu = core::paperMachine();
        config.scheme = scheme;
        auto built = std::make_shared<const core::BuiltImage>(
            core::buildImage(program, config));
        cpu::RunStats ref;
        for (int combo = 0; combo < 8; ++combo) {
            config.cpu.predecode = (combo & 1) != 0;
            config.cpu.blockExec = (combo & 2) != 0;
            config.cpu.superblockExec = (combo & 4) != 0;
            char label[40];
            std::snprintf(label, sizeof label,
                          "predecode=%d,blocks=%d,superblock=%d",
                          combo & 1, (combo >> 1) & 1, (combo >> 2) & 1);
            core::System system(built, config);
            cpu::RunStats stats = system.run().stats;
            if (combo == 0)
                ref = stats;
            else
                assertParity(stats, ref, compress::schemeName(scheme),
                             label);
        }
        std::printf("parity ok: %-10s (all RunStats counters identical "
                    "across 8 engine-flag combinations)\n",
                    compress::schemeName(scheme));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool parity = false;
    bool observe = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--parity") == 0)
            parity = true;
        else if (std::strcmp(argv[i], "--observe") == 0)
            observe = true;
    }

    setInformEnabled(false);
    if (parity) {
        std::printf("=== simperf: engine parity check ===\n");
        return runParity(bench::announceScale());
    }
    if (observe) {
        std::printf("=== simperf: observation overhead check ===\n");
        return runObserve(bench::announceScale());
    }

    std::printf("=== simperf: host simulation speed (MIPS) ===\n");
    double scale = bench::announceScale();
    cpu::CpuConfig machine = core::paperMachine();
    machine.verifyDecompression = false;

    harness::ResultSink sink("simperf");
    sink.setScale(scale);
    sink.setMachine(machine);
    sink.printMachineHeader();

    prog::Program program = bench::generateBenchmark(
        workload::paperBenchmark("cc1"), scale);

    Table table({"scheme", "engine", "sim insns", "wall s", "host MIPS",
                 "vs legacy", "vs predecode", "vs blocks"});
    double codepack_sb_speedup = 0.0;
    for (Scheme scheme :
         {Scheme::None, Scheme::Dictionary, Scheme::CodePack}) {
        core::SystemConfig config;
        config.cpu = machine;
        config.scheme = scheme;
        auto built = std::make_shared<const core::BuiltImage>(
            core::buildImage(program, config));

        const int reps = smoke ? 1 : 7;
        TimedRun runs[kNumEngines];
        timedQuad(built, config, reps, runs);
        for (int e = 1; e < kNumEngines; ++e) {
            assertParity(runs[e].result.stats, runs[0].result.stats,
                         compress::schemeName(scheme), kEngines[e].name);
        }

        for (int e = 0; e < kNumEngines; ++e) {
            const TimedRun &run = runs[e];
            double vs_legacy = e > 0 && runs[0].hostMips > 0.0
                                   ? run.hostMips / runs[0].hostMips
                                   : 0.0;
            double vs_predecode = e >= 2 && runs[1].hostMips > 0.0
                                      ? run.hostMips / runs[1].hostMips
                                      : 0.0;
            double vs_blocks = e == 3 && runs[2].hostMips > 0.0
                                   ? run.hostMips / runs[2].hostMips
                                   : 0.0;
            if (e == 3 && scheme == Scheme::CodePack)
                codepack_sb_speedup = vs_blocks;
            uint64_t insns = run.result.stats.userInsns +
                             run.result.stats.handlerInsns;
            table.addRow({
                compress::schemeName(scheme),
                kEngines[e].name,
                fmtCount(insns),
                fmtDouble(run.wallSeconds, 3),
                fmtDouble(run.hostMips, 1),
                e > 0 ? fmtDouble(vs_legacy, 2) + "x" : "-",
                e >= 2 ? fmtDouble(vs_predecode, 2) + "x" : "-",
                e == 3 ? fmtDouble(vs_blocks, 2) + "x" : "-",
            });

            harness::Json row = harness::Json::object();
            row.set("scheme", compress::schemeName(scheme));
            row.set("engine", kEngines[e].name);
            row.set("predecode", kEngines[e].predecode);
            row.set("block_exec", kEngines[e].blockExec);
            row.set("superblock_exec", kEngines[e].superblockExec);
            row.set("user_insns", run.result.stats.userInsns);
            row.set("handler_insns", run.result.stats.handlerInsns);
            row.set("cycles", run.result.stats.cycles);
            row.set("wall_seconds", run.wallSeconds);
            row.set("host_mips", run.hostMips);
            if (e > 0)
                row.set("speedup_vs_decode", vs_legacy);
            if (e >= 2)
                row.set("speedup_vs_predecode", vs_predecode);
            if (e == 3)
                row.set("speedup_vs_blocks", vs_blocks);
            sink.addRow(std::move(row));
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nMIPS = simulated (user + handler) instructions per "
                "second of host wall-clock;\nspeedups compare engines on "
                "the same BuiltImage (legacy = decode per fetch,\n"
                "predecode = decode-once caches, blocks = block-"
                "structured dispatch on top,\nsuperblock = trace-linked "
                "threaded dispatch on top of that).\n"
                "CodePack superblock-vs-blocks speedup: %.2fx\n",
                codepack_sb_speedup);

    const std::string path = "BENCH_simperf.json";
    if (!sink.writeJson(path))
        return 1;

    if (smoke) {
        std::string error;
        if (!validateJson(path, error)) {
            std::fprintf(stderr, "simperf smoke: BAD %s: %s\n",
                         path.c_str(), error.c_str());
            return 1;
        }
        std::printf("simperf smoke: %s schema + nonzero MIPS ok\n",
                    path.c_str());
    }
    return 0;
}
