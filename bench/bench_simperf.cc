/**
 * @file
 * Host simulation-speed bench: wall-clock MIPS (millions of simulated
 * instructions per second of host time) for native, dictionary and
 * CodePack runs of the cc1 stand-in, with the predecode fast path on
 * and off. This establishes the perf trajectory the ROADMAP asks for:
 * future PRs report speedups against the recorded baseline.
 *
 * Unlike every other bench, the emitted `BENCH_simperf.json` carries
 * wall-clock fields by design, so it has its own schema (`"sweep":
 * "simperf"`, rows with `wall_seconds`/`host_mips`) and is explicitly
 * *excluded* from the harness's byte-identical-rows determinism
 * contract. The simulated results themselves stay deterministic: each
 * scheme's predecode-on run is asserted cycle-identical to its
 * predecode-off run before any timing is reported.
 *
 * `--smoke` (used by the `simperf_smoke` ctest) additionally re-parses
 * the written JSON and fails unless every row has the expected keys and
 * a nonzero MIPS figure — never a performance threshold.
 *
 * Decompression self-verification (CpuConfig::verifyDecompression) is
 * off for all timed runs: both fetch paths time the simulator, not the
 * simulator's self-checks.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "../bench/common.h"
#include "compress/compressed_image.h"
#include "core/system.h"
#include "harness/json.h"
#include "harness/result_sink.h"
#include "support/logging.h"
#include "support/table.h"

namespace {

using namespace rtd;
using compress::Scheme;

struct TimedRun
{
    core::SystemResult result;
    double wallSeconds = 0.0;
    double hostMips = 0.0;
};

/** One timed simulation (construction excluded from the clock). */
void
timeOnce(const std::shared_ptr<const core::BuiltImage> &built,
         const core::SystemConfig &config, bool first, TimedRun &best)
{
    core::System system(built, config);
    auto start = std::chrono::steady_clock::now();
    core::SystemResult result = system.run();
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (first || elapsed.count() < best.wallSeconds) {
        best.result = std::move(result);
        best.wallSeconds = elapsed.count();
    }
}

void
finishMips(TimedRun &run)
{
    uint64_t insns =
        run.result.stats.userInsns + run.result.stats.handlerInsns;
    if (run.wallSeconds > 0.0)
        run.hostMips = static_cast<double>(insns) / 1e6 / run.wallSeconds;
}

/**
 * Time predecode-off and predecode-on runs of the same BuiltImage,
 * keeping each side's fastest wall time (the standard noise-robust
 * estimator: interference only ever slows a run down). Repetitions are
 * interleaved off/on so a sustained slow period on the host hits both
 * sides rather than biasing the speedup. The simulated results are
 * identical across reps.
 */
std::pair<TimedRun, TimedRun>
timedPair(const std::shared_ptr<const core::BuiltImage> &built,
          core::SystemConfig config, int reps)
{
    TimedRun off, on;
    for (int i = 0; i < reps; ++i) {
        config.cpu.predecode = false;
        timeOnce(built, config, i == 0, off);
        config.cpu.predecode = true;
        timeOnce(built, config, i == 0, on);
    }
    finishMips(off);
    finishMips(on);
    return {off, on};
}

/** The simulated-result fields that must not depend on the fetch path. */
void
assertParity(const cpu::RunStats &on, const cpu::RunStats &off,
             const char *scheme)
{
    if (on.cycles != off.cycles || on.userInsns != off.userInsns ||
        on.handlerInsns != off.handlerInsns ||
        on.icacheMisses != off.icacheMisses ||
        on.exceptions != off.exceptions ||
        on.resultValue != off.resultValue) {
        fatal("%s: predecode on/off runs diverged (cycles %llu vs %llu)",
              scheme, static_cast<unsigned long long>(on.cycles),
              static_cast<unsigned long long>(off.cycles));
    }
}

/** Validate the smoke-mode JSON schema; returns false with a message. */
bool
validateJson(const std::string &path, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    harness::Json doc;
    if (!harness::Json::parse(buf.str(), &doc, &error))
        return false;
    const harness::Json *sweep = doc.find("sweep");
    if (!sweep || sweep->asString() != "simperf") {
        error = "missing sweep name";
        return false;
    }
    const harness::Json *rows = doc.find("rows");
    if (!rows || rows->size() == 0) {
        error = "no rows";
        return false;
    }
    for (size_t i = 0; i < rows->size(); ++i) {
        const harness::Json &row = rows->at(i);
        for (const char *key :
             {"scheme", "predecode", "user_insns", "handler_insns",
              "wall_seconds", "host_mips"}) {
            if (!row.find(key)) {
                error = std::string("row missing key ") + key;
                return false;
            }
        }
        if (row.get("host_mips").asDouble() <= 0.0) {
            error = "zero host_mips";
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    setInformEnabled(false);
    std::printf("=== simperf: host simulation speed (MIPS) ===\n");
    double scale = bench::announceScale();
    cpu::CpuConfig machine = core::paperMachine();
    machine.verifyDecompression = false;

    harness::ResultSink sink("simperf");
    sink.setScale(scale);
    sink.setMachine(machine);
    sink.printMachineHeader();

    prog::Program program = bench::generateBenchmark(
        workload::paperBenchmark("cc1"), scale);

    Table table({"scheme", "predecode", "sim insns", "wall s",
                 "host MIPS", "speedup"});
    double dict_speedup = 0.0;
    for (Scheme scheme :
         {Scheme::None, Scheme::Dictionary, Scheme::CodePack}) {
        core::SystemConfig config;
        config.cpu = machine;
        config.scheme = scheme;
        auto built = std::make_shared<const core::BuiltImage>(
            core::buildImage(program, config));

        const int reps = smoke ? 1 : 7;
        auto [off, on] = timedPair(built, config, reps);
        assertParity(on.result.stats, off.result.stats,
                     compress::schemeName(scheme));

        double speedup = off.hostMips > 0.0 && on.hostMips > 0.0
                             ? on.hostMips / off.hostMips
                             : 0.0;
        if (scheme == Scheme::Dictionary)
            dict_speedup = speedup;
        const TimedRun *runs[] = {&off, &on};
        for (const TimedRun *run : runs) {
            bool predecode = run == &on;
            uint64_t insns = run->result.stats.userInsns +
                             run->result.stats.handlerInsns;
            table.addRow({
                compress::schemeName(scheme),
                predecode ? "on" : "off",
                fmtCount(insns),
                fmtDouble(run->wallSeconds, 3),
                fmtDouble(run->hostMips, 1),
                predecode ? fmtDouble(speedup, 2) + "x" : "-",
            });

            harness::Json row = harness::Json::object();
            row.set("scheme", compress::schemeName(scheme));
            row.set("predecode", predecode);
            row.set("user_insns", run->result.stats.userInsns);
            row.set("handler_insns", run->result.stats.handlerInsns);
            row.set("cycles", run->result.stats.cycles);
            row.set("wall_seconds", run->wallSeconds);
            row.set("host_mips", run->hostMips);
            if (predecode)
                row.set("speedup_vs_decode", speedup);
            sink.addRow(std::move(row));
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nMIPS = simulated (user + handler) instructions per "
                "second of host wall-clock;\nspeedup = predecode-on MIPS "
                "/ predecode-off MIPS on the same BuiltImage.\n"
                "Dictionary speedup: %.2fx\n", dict_speedup);

    const std::string path = "BENCH_simperf.json";
    if (!sink.writeJson(path))
        return 1;

    if (smoke) {
        std::string error;
        if (!validateJson(path, error)) {
            std::fprintf(stderr, "simperf smoke: BAD %s: %s\n",
                         path.c_str(), error.c_str());
            return 1;
        }
        std::printf("simperf smoke: %s schema + nonzero MIPS ok\n",
                    path.c_str());
    }
    return 0;
}
