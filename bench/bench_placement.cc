/**
 * @file
 * Extension bench: the unified selective-compression + code-placement
 * framework the paper names as future work (section 5.3).
 *
 * For each benchmark:
 *  1. native code with the original vs affinity (Pettis-Hansen-style)
 *     procedure order — the classical placement win;
 *  2. miss-based selective compression at the 20% threshold with the
 *     original vs affinity order inside each region — does placement
 *     recover the conflict misses that region splitting perturbs?
 */

#include <cstdio>

#include "../bench/common.h"
#include "profile/placement.h"
#include "profile/selection.h"
#include "support/table.h"

using namespace rtd;
using compress::Scheme;
using profile::SelectionPolicy;

int
main()
{
    setInformEnabled(false);
    std::printf("=== Extension: unified selective compression + "
                "placement (paper section 5.3 future work) ===\n");
    double scale = bench::announceScale();
    cpu::CpuConfig machine = core::paperMachine();
    machine.verifyDecompression = false;  // self-checks stay in tests
    bench::printMachineHeader(machine);

    Table table({"benchmark", "config", "miss ratio", "cycles",
                 "vs original"});
    for (const auto &benchmark : workload::paperBenchmarks()) {
        prog::Program program = bench::generateBenchmark(benchmark, scale);
        profile::ProcedureProfile profile =
            core::profileProgram(program, machine);
        auto order = profile::affinityOrder(program.procs.size(),
                                            profile.transitions);
        auto regions = profile::selectNative(
            profile, SelectionPolicy::MissBased, 0.20);

        core::SystemResult native = core::runNative(program, machine);
        core::SystemResult native_placed =
            core::runNative(program, machine, order);
        core::SystemResult hybrid = core::runCompressed(
            program, Scheme::Dictionary, false, machine, regions);
        core::SystemResult hybrid_placed = core::runCompressed(
            program, Scheme::Dictionary, false, machine, regions, order);

        auto row = [&](const char *config,
                       const core::SystemResult &run,
                       const core::SystemResult &reference) {
            table.addRow({
                benchmark.spec.name,
                config,
                fmtPercent(100 * run.stats.icacheMissRatio(), 3),
                fmtCount(run.stats.cycles),
                fmtDouble(static_cast<double>(run.stats.cycles) /
                              static_cast<double>(reference.stats.cycles),
                          3),
            });
        };
        row("native, original order", native, native);
        row("native, affinity order", native_placed, native);
        row("D miss@20%, original order", hybrid, hybrid);
        row("D miss@20%, affinity order", hybrid_placed, hybrid);
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape: affinity placement trims conflict "
                "misses on the call-oriented\nbenchmarks (cc1/go/perl) "
                "and composes with selective compression. Gains are\n"
                "modest here because the synthetic benchmarks' misses "
                "are mostly capacity misses\nfrom working sets that "
                "cycle through the cache, which no ordering fixes —\n"
                "[Pettis90]'s up-to-10%% wins come from conflict-"
                "dominated codes.\n");
    return 0;
}
