/**
 * @file
 * Extension bench: the cost locus of compressed code — dense 16-bit
 * re-encoding (MIPS16/Thumb, paper section 3.3) vs run-time
 * decompression.
 *
 * The 16-bit baseline pays on every *execution* (more instructions); the
 * paper's decompressors pay on every *miss*. Consequences this bench
 * makes visible:
 *
 *  - 16-bit slowdown is nearly constant across benchmarks, regardless
 *    of miss ratio; decompression slowdown tracks the miss ratio, so
 *    loop-oriented programs run at native speed;
 *  - for 16-bit hybrids, execution-based selection is the right policy
 *    (keep the hottest procedures 32-bit) — the reason MIPS16/Thumb
 *    tooling profiles execution, and the foil for the paper's argument
 *    that *miss-based* selection fits cache-miss-time decompression.
 */

#include <cstdio>

#include "../bench/common.h"
#include "isa16/thumb.h"
#include "profile/selection.h"
#include "support/table.h"

using namespace rtd;
using compress::Scheme;
using profile::SelectionPolicy;

namespace {

/** Run the 16-bit translation of @p program with a native-proc mask. */
core::SystemResult
runThumb(const prog::Program &program, const cpu::CpuConfig &machine,
         const std::vector<uint8_t> &mask, uint32_t *size16)
{
    isa16::ThumbProgram thumb = isa16::translateProgram(program, mask);
    *size16 = thumb.textBytes16();
    return core::runNative(thumb.program, machine);
}

} // namespace

int
main()
{
    setInformEnabled(false);
    std::printf("=== Extension: 16-bit re-encoding (MIPS16/Thumb "
                "model) vs run-time decompression ===\n");
    double scale = bench::announceScale();
    cpu::CpuConfig machine = core::paperMachine();
    machine.verifyDecompression = false;  // self-checks stay in tests
    bench::printMachineHeader(machine);

    std::printf("\n--- full translation vs full compression ---\n");
    Table table({"benchmark", "miss%", "16-bit ratio", "16-bit slow",
                 "insn overhead", "D slow", "CP slow"});
    for (const auto &benchmark : workload::paperBenchmarks()) {
        prog::Program program = bench::generateBenchmark(benchmark, scale);
        core::SystemResult native = core::runNative(program, machine);
        uint32_t size16 = 0;
        std::vector<uint8_t> all(program.procs.size(), 1);
        core::SystemResult thumb =
            runThumb(program, machine, all, &size16);
        core::SystemResult dict = core::runCompressed(
            program, Scheme::Dictionary, true, machine);
        core::SystemResult cp = core::runCompressed(
            program, Scheme::CodePack, true, machine);
        table.addRow({
            benchmark.spec.name,
            fmtPercent(100 * native.stats.icacheMissRatio(), 2),
            fmtPercent(percent(size16, program.textBytes()), 1),
            fmtDouble(core::slowdown(thumb, native), 3),
            fmtPercent(percent(thumb.stats.userInsns,
                               native.stats.userInsns) - 100.0, 1),
            fmtDouble(core::slowdown(dict, native), 3),
            fmtDouble(core::slowdown(cp, native), 3),
        });
    }
    std::printf("%s", table.render().c_str());

    // Selective 16-bit: the hottest procedures stay 32-bit. Exec-based
    // selection is the natural policy here (cost is per execution).
    std::printf("\n--- selective 16-bit: exec- vs miss-based selection "
                "(loop-oriented benchmarks) ---\n");
    Table sel({"benchmark", "policy", "threshold", "ratio", "slowdown"});
    for (const char *name : {"mpeg2enc", "pegwit", "cc1"}) {
        const auto &benchmark = workload::paperBenchmark(name);
        prog::Program program = bench::generateBenchmark(benchmark, scale);
        core::SystemResult native = core::runNative(program, machine);
        profile::ProcedureProfile profile =
            core::profileProgram(program, machine);
        for (SelectionPolicy policy : {SelectionPolicy::ExecutionBased,
                                       SelectionPolicy::MissBased}) {
            for (double threshold : {0.20, 0.50}) {
                auto regions = profile::selectNative(profile, policy,
                                                     threshold);
                std::vector<uint8_t> mask(regions.size());
                for (size_t i = 0; i < regions.size(); ++i)
                    mask[i] = regions[i] == prog::Region::Compressed;
                uint32_t size16 = 0;
                core::SystemResult run =
                    runThumb(program, machine, mask, &size16);
                sel.addRow({
                    name,
                    profile::policyName(policy),
                    fmtPercent(100 * threshold, 0),
                    fmtPercent(percent(size16, program.textBytes()), 1),
                    fmtDouble(core::slowdown(run, native), 3),
                });
            }
        }
    }
    std::printf("%s", sel.render().c_str());

    std::printf("\nExpected shape: the 16-bit baseline's slowdown is "
                "flat across benchmarks (its cost\nis paid on every "
                "execution) while decompression tracks the miss ratio — "
                "the cost-locus\ncontrast behind section 3.3. In the "
                "selective table the two policies sit within\nplacement "
                "noise of each other because our synthetic translation "
                "overhead (~6%% more\ninstructions; the paper quotes "
                "15-20%% for real Thumb, whose compilers need more\n"
                "fixups) is small at these thresholds. Published Thumb "
                "compresses to ~70%%; the\nsynthetic workloads' "
                "immediate-heavy mix (no 16-bit encodings exist for "
                "immediate\nlogicals) lands higher.\n");
    return 0;
}
