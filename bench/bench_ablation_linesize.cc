/**
 * @file
 * Ablation: I-cache line size under dictionary decompression. The
 * dictionary handler is generated for the configured line size (the
 * Figure 2 loop bound and shift amounts are parameters of the handler
 * builder), so this sweep exercises the decompressor at 16/32/64-byte
 * granularity at a fixed 16 KB capacity. Longer lines amortize the
 * handler's setup cost over more words but decompress speculatively
 * more code per miss.
 */

#include <cstdio>

#include "../bench/common.h"
#include "support/table.h"

using namespace rtd;
using compress::Scheme;

int
main()
{
    setInformEnabled(false);
    std::printf("=== Ablation: I-cache line size (dictionary) ===\n");
    double scale = bench::announceScale();

    const char *names[] = {"go", "vortex", "ijpeg"};
    Table table({"benchmark", "line", "miss ratio", "handler insns/miss",
                 "D slowdown", "D+RF slowdown"});
    for (const char *name : names) {
        const auto &benchmark = workload::paperBenchmark(name);
        prog::Program program = bench::generateBenchmark(benchmark, scale);
        for (uint32_t line : {16u, 32u, 64u}) {
            cpu::CpuConfig machine = core::paperMachine();
            machine.icache.lineBytes = line;
            core::SystemResult native = core::runNative(program, machine);
            core::SystemResult dict = core::runCompressed(
                program, Scheme::Dictionary, false, machine);
            core::SystemResult rf = core::runCompressed(
                program, Scheme::Dictionary, true, machine);
            double per_miss =
                dict.stats.exceptions
                    ? static_cast<double>(dict.stats.handlerInsns) /
                          static_cast<double>(dict.stats.exceptions)
                    : 0.0;
            table.addRow({
                name,
                std::to_string(line) + "B",
                fmtPercent(100 * native.stats.icacheMissRatio(), 3),
                fmtDouble(per_miss, 0),
                fmtDouble(core::slowdown(dict, native), 2),
                fmtDouble(core::slowdown(rf, native), 2),
            });
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nHandler cost per miss is 19 + 7*words/line "
                "instructions (Figure 2): 47 for 16 B\nlines, 75 for "
                "32 B, 131 for 64 B; longer lines trade fewer misses "
                "for more work each.\n");
    return 0;
}
