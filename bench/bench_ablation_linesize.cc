/**
 * @file
 * Ablation: I-cache line size under dictionary decompression. The
 * dictionary handler is generated for the configured line size (the
 * Figure 2 loop bound and shift amounts are parameters of the handler
 * builder), so this sweep exercises the decompressor at 16/32/64-byte
 * granularity at a fixed 16 KB capacity. Longer lines amortize the
 * handler's setup cost over more words but decompress speculatively
 * more code per miss.
 *
 * Runs on the sweep harness; rows are also written to
 * BENCH_ablation_linesize.json.
 */

#include "harness/sweeps.h"
#include "support/logging.h"

int
main()
{
    rtd::setInformEnabled(false);
    return rtd::harness::runSweep(
        "ablation_linesize", rtd::harness::SweepOptions::fromEnv());
}
