/**
 * @file
 * Regenerates the paper's Figure 5: selective-compression size/speed
 * curves. For every benchmark, both compression schemes (dictionary and
 * CodePack) are combined with both selection policies (execution-based
 * and miss-based) at the paper's thresholds (5/10/15/20/50% of the
 * profiled metric), plus the fully-compressed and fully-native
 * endpoints. Each data point is (compression ratio, slowdown).
 *
 * Expected shapes (paper section 5.3):
 *  - curves fall from the fully-compressed slowdown at the left to 1.0
 *    at 100% compression ratio (fully native);
 *  - miss-based selection beats execution-based on the loop-oriented
 *    benchmarks (mpeg2enc, pegwit);
 *  - occasional non-monotonicity from the procedure-placement effect;
 *  - CodePack hybrids can be both smaller and faster than dictionary
 *    hybrids at matched points (ijpeg, ghostscript in the paper).
 *
 * Runs on the sweep harness: a parallel profiling phase feeds the
 * selection grid, the printed tables are identical to the pre-harness
 * serial output, and the result rows are additionally written to
 * BENCH_figure5.json.
 */

#include "harness/sweeps.h"
#include "support/logging.h"

int
main()
{
    rtd::setInformEnabled(false);
    return rtd::harness::runSweep(
        "figure5", rtd::harness::SweepOptions::fromEnv());
}
