/**
 * @file
 * Regenerates the paper's Figure 5: selective-compression size/speed
 * curves. For every benchmark, both compression schemes (dictionary and
 * CodePack) are combined with both selection policies (execution-based
 * and miss-based) at the paper's thresholds (5/10/15/20/50% of the
 * profiled metric), plus the fully-compressed and fully-native
 * endpoints. Each data point is (compression ratio, slowdown).
 *
 * Expected shapes (paper section 5.3):
 *  - curves fall from the fully-compressed slowdown at the left to 1.0
 *    at 100% compression ratio (fully native);
 *  - miss-based selection beats execution-based on the loop-oriented
 *    benchmarks (mpeg2enc, pegwit);
 *  - occasional non-monotonicity from the procedure-placement effect;
 *  - CodePack hybrids can be both smaller and faster than dictionary
 *    hybrids at matched points (ijpeg, ghostscript in the paper).
 */

#include <cstdio>

#include "../bench/common.h"
#include "profile/selection.h"
#include "support/table.h"

using namespace rtd;
using compress::Scheme;
using profile::SelectionPolicy;

int
main()
{
    setInformEnabled(false);
    std::printf(
        "=== Figure 5: selective compression size/speed curves ===\n");
    double scale = bench::announceScale();
    cpu::CpuConfig machine = core::paperMachine();
    bench::printMachineHeader(machine);

    for (const auto &benchmark : workload::paperBenchmarks()) {
        prog::Program program = bench::generateBenchmark(benchmark, scale);
        core::SystemResult native = core::runNative(program, machine);
        profile::ProcedureProfile profile =
            core::profileProgram(program, machine);

        std::printf("\n--- %s ---\n", benchmark.spec.name.c_str());
        Table table({"series", "threshold", "ratio", "slowdown"});
        for (Scheme scheme : {Scheme::Dictionary, Scheme::CodePack}) {
            for (SelectionPolicy policy :
                 {SelectionPolicy::ExecutionBased,
                  SelectionPolicy::MissBased}) {
                std::string series =
                    std::string(scheme == Scheme::Dictionary ? "D" : "CP") +
                    " " + profile::policyName(policy);
                for (double threshold :
                     {0.0, 0.05, 0.10, 0.15, 0.20, 0.50, 1.0}) {
                    auto regions = profile::selectNative(profile, policy,
                                                         threshold);
                    core::SystemResult run = core::runCompressed(
                        program, scheme, false, machine, regions);
                    table.addRow({
                        series,
                        fmtPercent(100 * threshold, 0),
                        fmtPercent(100 * run.compressionRatio(), 1),
                        fmtDouble(core::slowdown(run, native), 3),
                    });
                }
            }
        }
        std::printf("%s", table.render().c_str());
    }
    return 0;
}
