/**
 * @file
 * Regenerates the paper's comparison against procedure-based
 * decompression (Kirovski et al., discussed in sections 2 and 5.2):
 *
 *  - the paper's cache-line schemes (dictionary, CodePack) vs LZRW1
 *    procedure-granularity decompression with a software-managed
 *    procedure cache, across procedure-cache sizes;
 *  - the LZRW1 whole-.text compression ratio as the lower bound for
 *    procedure-based compression (Table 2's last column).
 *
 * Expected shape: the procedure-based scheme shows far wider variance
 * across cache sizes — from marginal slowdown (big cache, loop code) to
 * orders of magnitude (small cache, call-oriented code) — while the
 * paper's line-granularity schemes stay stable; procedure-based LZRW1
 * can nevertheless compress as well as or better than CodePack.
 */

#include <cstdio>

#include "../bench/common.h"
#include "support/table.h"

using namespace rtd;
using compress::Scheme;

int
main()
{
    setInformEnabled(false);
    std::printf("=== Procedure-based decompression (Kirovski et al.) "
                "vs cache-line decompression ===\n");
    double scale = bench::announceScale();
    cpu::CpuConfig machine = core::paperMachine();
    machine.verifyDecompression = false;  // self-checks stay in tests
    bench::printMachineHeader(machine);

    const char *names[] = {"cc1", "go", "ghostscript", "mpeg2enc"};

    Table table({"benchmark", "scheme", "pcache", "ratio", "slowdown",
                 "faults", "evictions", "compacted"});
    for (const char *name : names) {
        const auto &benchmark = workload::paperBenchmark(name);
        prog::Program program = bench::generateBenchmark(benchmark, scale);
        core::SystemResult native = core::runNative(program, machine);

        core::SystemResult dict = core::runCompressed(
            program, Scheme::Dictionary, false, machine);
        table.addRow({name, "dictionary", "-",
                      fmtPercent(100 * dict.compressionRatio(), 1),
                      fmtDouble(core::slowdown(dict, native), 2), "-",
                      "-", "-"});
        core::SystemResult cp = core::runCompressed(
            program, Scheme::CodePack, false, machine);
        table.addRow({name, "codepack", "-",
                      fmtPercent(100 * cp.compressionRatio(), 1),
                      fmtDouble(core::slowdown(cp, native), 2), "-",
                      "-", "-"});

        // Whole-.text LZRW1: the paper's lower bound for what
        // procedure-based LZRW1 compression could achieve (Table 2).
        table.addRow({name, "lzrw1 (whole .text)", "-",
                      fmtPercent(core::lzrw1TextRatio(program), 1),
                      "-", "-", "-", "-"});

        for (uint32_t kb : {4u, 8u, 16u, 64u}) {
            core::SystemConfig config;
            config.cpu = machine;
            config.scheme = Scheme::ProcLzrw1;
            config.procCache.capacityBytes = kb * 1024;
            core::System system(program, config);
            core::SystemResult run = system.run();
            table.addRow({
                name,
                "proc-lzrw1",
                std::to_string(kb) + "KB",
                fmtPercent(100 * run.compressionRatio(), 1),
                fmtDouble(core::slowdown(run, native), 2),
                fmtCount(run.stats.procFaults),
                fmtCount(run.stats.procEvictions),
                fmtCount(run.stats.procCompactedBytes),
            });
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape (paper section 5.2): the line-"
                "granularity schemes are stable while the\nprocedure "
                "scheme is both slower and far more variable across "
                "procedure-cache sizes on\ncall-oriented code, because "
                "it decompresses whole procedures (including code that\n"
                "is never executed) and pays allocation/compaction "
                "costs. The whole-.text LZRW1 row\nis the paper's lower "
                "bound for procedure-based compression; per-procedure "
                "streams\ncompress less (small windows), the cost the "
                "scheme pays in exchange for random\naccess at "
                "procedure granularity.\n");
    return 0;
}
