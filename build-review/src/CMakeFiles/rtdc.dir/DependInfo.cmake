
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/rtdc.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/cache/cache.cc.o.d"
  "/root/repo/src/compress/codepack.cc" "src/CMakeFiles/rtdc.dir/compress/codepack.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/compress/codepack.cc.o.d"
  "/root/repo/src/compress/dictionary.cc" "src/CMakeFiles/rtdc.dir/compress/dictionary.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/compress/dictionary.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/CMakeFiles/rtdc.dir/compress/huffman.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/compress/huffman.cc.o.d"
  "/root/repo/src/compress/lzrw1.cc" "src/CMakeFiles/rtdc.dir/compress/lzrw1.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/compress/lzrw1.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/rtdc.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/rtdc.dir/core/report.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/core/report.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/rtdc.dir/core/system.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/core/system.cc.o.d"
  "/root/repo/src/cpu/cpu.cc" "src/CMakeFiles/rtdc.dir/cpu/cpu.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/cpu/cpu.cc.o.d"
  "/root/repo/src/cpu/predictor.cc" "src/CMakeFiles/rtdc.dir/cpu/predictor.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/cpu/predictor.cc.o.d"
  "/root/repo/src/harness/artifact_cache.cc" "src/CMakeFiles/rtdc.dir/harness/artifact_cache.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/harness/artifact_cache.cc.o.d"
  "/root/repo/src/harness/json.cc" "src/CMakeFiles/rtdc.dir/harness/json.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/harness/json.cc.o.d"
  "/root/repo/src/harness/result_sink.cc" "src/CMakeFiles/rtdc.dir/harness/result_sink.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/harness/result_sink.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/rtdc.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/harness/runner.cc.o.d"
  "/root/repo/src/harness/sweeps.cc" "src/CMakeFiles/rtdc.dir/harness/sweeps.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/harness/sweeps.cc.o.d"
  "/root/repo/src/harness/thread_pool.cc" "src/CMakeFiles/rtdc.dir/harness/thread_pool.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/harness/thread_pool.cc.o.d"
  "/root/repo/src/isa/decode.cc" "src/CMakeFiles/rtdc.dir/isa/decode.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/isa/decode.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/rtdc.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/rtdc.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/isa/isa.cc.o.d"
  "/root/repo/src/isa/predecode.cc" "src/CMakeFiles/rtdc.dir/isa/predecode.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/isa/predecode.cc.o.d"
  "/root/repo/src/isa16/thumb.cc" "src/CMakeFiles/rtdc.dir/isa16/thumb.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/isa16/thumb.cc.o.d"
  "/root/repo/src/mem/handler_ram.cc" "src/CMakeFiles/rtdc.dir/mem/handler_ram.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/mem/handler_ram.cc.o.d"
  "/root/repo/src/mem/main_memory.cc" "src/CMakeFiles/rtdc.dir/mem/main_memory.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/mem/main_memory.cc.o.d"
  "/root/repo/src/proccache/lzrw1_handler.cc" "src/CMakeFiles/rtdc.dir/proccache/lzrw1_handler.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/proccache/lzrw1_handler.cc.o.d"
  "/root/repo/src/proccache/manager.cc" "src/CMakeFiles/rtdc.dir/proccache/manager.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/proccache/manager.cc.o.d"
  "/root/repo/src/proccache/proc_image.cc" "src/CMakeFiles/rtdc.dir/proccache/proc_image.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/proccache/proc_image.cc.o.d"
  "/root/repo/src/profile/placement.cc" "src/CMakeFiles/rtdc.dir/profile/placement.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/profile/placement.cc.o.d"
  "/root/repo/src/profile/profile.cc" "src/CMakeFiles/rtdc.dir/profile/profile.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/profile/profile.cc.o.d"
  "/root/repo/src/profile/selection.cc" "src/CMakeFiles/rtdc.dir/profile/selection.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/profile/selection.cc.o.d"
  "/root/repo/src/program/builder.cc" "src/CMakeFiles/rtdc.dir/program/builder.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/program/builder.cc.o.d"
  "/root/repo/src/program/linker.cc" "src/CMakeFiles/rtdc.dir/program/linker.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/program/linker.cc.o.d"
  "/root/repo/src/program/program.cc" "src/CMakeFiles/rtdc.dir/program/program.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/program/program.cc.o.d"
  "/root/repo/src/runtime/codepack_handler.cc" "src/CMakeFiles/rtdc.dir/runtime/codepack_handler.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/runtime/codepack_handler.cc.o.d"
  "/root/repo/src/runtime/dictionary_handler.cc" "src/CMakeFiles/rtdc.dir/runtime/dictionary_handler.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/runtime/dictionary_handler.cc.o.d"
  "/root/repo/src/runtime/huffman_handler.cc" "src/CMakeFiles/rtdc.dir/runtime/huffman_handler.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/runtime/huffman_handler.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/rtdc.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/support/logging.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/rtdc.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/support/rng.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/CMakeFiles/rtdc.dir/support/stats.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/support/stats.cc.o.d"
  "/root/repo/src/support/table.cc" "src/CMakeFiles/rtdc.dir/support/table.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/support/table.cc.o.d"
  "/root/repo/src/workload/benchmarks.cc" "src/CMakeFiles/rtdc.dir/workload/benchmarks.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/workload/benchmarks.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/rtdc.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/rtdc.dir/workload/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
