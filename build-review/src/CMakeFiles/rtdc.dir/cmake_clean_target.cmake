file(REMOVE_RECURSE
  "librtdc.a"
)
