# Empty dependencies file for rtdc.
# This may be replaced when dependencies are built.
