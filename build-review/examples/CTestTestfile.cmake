# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sweep_smoke "/root/repo/build-review/examples/rtdc_sweep" "table3" "--jobs" "4" "--scale" "0.03" "--out" "sweep_smoke.json")
set_tests_properties(sweep_smoke PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
