# Empty compiler generated dependencies file for selective_compression.
# This may be replaced when dependencies are built.
