file(REMOVE_RECURSE
  "CMakeFiles/selective_compression.dir/selective_compression.cpp.o"
  "CMakeFiles/selective_compression.dir/selective_compression.cpp.o.d"
  "selective_compression"
  "selective_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
