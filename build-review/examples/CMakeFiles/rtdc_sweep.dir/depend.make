# Empty dependencies file for rtdc_sweep.
# This may be replaced when dependencies are built.
