file(REMOVE_RECURSE
  "CMakeFiles/rtdc_sweep.dir/rtdc_sweep.cpp.o"
  "CMakeFiles/rtdc_sweep.dir/rtdc_sweep.cpp.o.d"
  "rtdc_sweep"
  "rtdc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
