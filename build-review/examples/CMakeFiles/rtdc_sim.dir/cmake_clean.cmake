file(REMOVE_RECURSE
  "CMakeFiles/rtdc_sim.dir/rtdc_sim.cpp.o"
  "CMakeFiles/rtdc_sim.dir/rtdc_sim.cpp.o.d"
  "rtdc_sim"
  "rtdc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
