# Empty dependencies file for rtdc_sim.
# This may be replaced when dependencies are built.
