file(REMOVE_RECURSE
  "CMakeFiles/scheme_shootout.dir/scheme_shootout.cpp.o"
  "CMakeFiles/scheme_shootout.dir/scheme_shootout.cpp.o.d"
  "scheme_shootout"
  "scheme_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
