# Empty compiler generated dependencies file for scheme_shootout.
# This may be replaced when dependencies are built.
