file(REMOVE_RECURSE
  "CMakeFiles/cache_sweep.dir/cache_sweep.cpp.o"
  "CMakeFiles/cache_sweep.dir/cache_sweep.cpp.o.d"
  "cache_sweep"
  "cache_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
