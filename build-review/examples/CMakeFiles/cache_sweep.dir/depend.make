# Empty dependencies file for cache_sweep.
# This may be replaced when dependencies are built.
