# Empty compiler generated dependencies file for inspect_handler.
# This may be replaced when dependencies are built.
