file(REMOVE_RECURSE
  "CMakeFiles/inspect_handler.dir/inspect_handler.cpp.o"
  "CMakeFiles/inspect_handler.dir/inspect_handler.cpp.o.d"
  "inspect_handler"
  "inspect_handler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_handler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
