# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_table2 "/root/repo/build-review/bench/bench_table2")
set_tests_properties(smoke_bench_table2 PROPERTIES  ENVIRONMENT "RTDC_BENCH_SCALE=0.03" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table3 "/root/repo/build-review/bench/bench_table3")
set_tests_properties(smoke_bench_table3 PROPERTIES  ENVIRONMENT "RTDC_BENCH_SCALE=0.03" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_kirovski "/root/repo/build-review/bench/bench_kirovski")
set_tests_properties(smoke_bench_kirovski PROPERTIES  ENVIRONMENT "RTDC_BENCH_SCALE=0.03" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_thumb "/root/repo/build-review/bench/bench_thumb")
set_tests_properties(smoke_bench_thumb PROPERTIES  ENVIRONMENT "RTDC_BENCH_SCALE=0.03" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(simperf_smoke "/root/repo/build-review/bench/bench_simperf" "--smoke")
set_tests_properties(simperf_smoke PROPERTIES  ENVIRONMENT "RTDC_BENCH_SCALE=0.03" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
