# Empty dependencies file for bench_ablation_linesize.
# This may be replaced when dependencies are built.
