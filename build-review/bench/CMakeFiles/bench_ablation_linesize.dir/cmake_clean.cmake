file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_linesize.dir/bench_ablation_linesize.cc.o"
  "CMakeFiles/bench_ablation_linesize.dir/bench_ablation_linesize.cc.o.d"
  "bench_ablation_linesize"
  "bench_ablation_linesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_linesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
