# Empty compiler generated dependencies file for bench_kirovski.
# This may be replaced when dependencies are built.
