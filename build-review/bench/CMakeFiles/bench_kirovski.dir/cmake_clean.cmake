file(REMOVE_RECURSE
  "CMakeFiles/bench_kirovski.dir/bench_kirovski.cc.o"
  "CMakeFiles/bench_kirovski.dir/bench_kirovski.cc.o.d"
  "bench_kirovski"
  "bench_kirovski.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kirovski.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
