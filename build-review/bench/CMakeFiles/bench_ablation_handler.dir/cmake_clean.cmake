file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_handler.dir/bench_ablation_handler.cc.o"
  "CMakeFiles/bench_ablation_handler.dir/bench_ablation_handler.cc.o.d"
  "bench_ablation_handler"
  "bench_ablation_handler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_handler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
