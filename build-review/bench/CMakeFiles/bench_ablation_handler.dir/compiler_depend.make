# Empty compiler generated dependencies file for bench_ablation_handler.
# This may be replaced when dependencies are built.
