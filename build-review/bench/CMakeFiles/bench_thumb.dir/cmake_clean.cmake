file(REMOVE_RECURSE
  "CMakeFiles/bench_thumb.dir/bench_thumb.cc.o"
  "CMakeFiles/bench_thumb.dir/bench_thumb.cc.o.d"
  "bench_thumb"
  "bench_thumb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thumb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
