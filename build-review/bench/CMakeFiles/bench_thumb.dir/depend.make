# Empty dependencies file for bench_thumb.
# This may be replaced when dependencies are built.
