file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5.dir/bench_figure5.cc.o"
  "CMakeFiles/bench_figure5.dir/bench_figure5.cc.o.d"
  "bench_figure5"
  "bench_figure5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
