file(REMOVE_RECURSE
  "CMakeFiles/test_predecode.dir/cpu/test_predecode.cc.o"
  "CMakeFiles/test_predecode.dir/cpu/test_predecode.cc.o.d"
  "test_predecode"
  "test_predecode.pdb"
  "test_predecode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
