# Empty dependencies file for test_predecode.
# This may be replaced when dependencies are built.
