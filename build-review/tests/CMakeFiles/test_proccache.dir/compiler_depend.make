# Empty compiler generated dependencies file for test_proccache.
# This may be replaced when dependencies are built.
