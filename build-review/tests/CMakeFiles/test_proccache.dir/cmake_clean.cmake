file(REMOVE_RECURSE
  "CMakeFiles/test_proccache.dir/proccache/test_proccache.cc.o"
  "CMakeFiles/test_proccache.dir/proccache/test_proccache.cc.o.d"
  "test_proccache"
  "test_proccache.pdb"
  "test_proccache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proccache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
