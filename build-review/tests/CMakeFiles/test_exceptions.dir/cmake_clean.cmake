file(REMOVE_RECURSE
  "CMakeFiles/test_exceptions.dir/cpu/test_exceptions.cc.o"
  "CMakeFiles/test_exceptions.dir/cpu/test_exceptions.cc.o.d"
  "test_exceptions"
  "test_exceptions.pdb"
  "test_exceptions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exceptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
