# Empty dependencies file for test_exceptions.
# This may be replaced when dependencies are built.
