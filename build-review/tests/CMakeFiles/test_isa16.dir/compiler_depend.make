# Empty compiler generated dependencies file for test_isa16.
# This may be replaced when dependencies are built.
