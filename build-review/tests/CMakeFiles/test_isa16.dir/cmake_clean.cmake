file(REMOVE_RECURSE
  "CMakeFiles/test_isa16.dir/isa16/test_thumb.cc.o"
  "CMakeFiles/test_isa16.dir/isa16/test_thumb.cc.o.d"
  "test_isa16"
  "test_isa16.pdb"
  "test_isa16[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
