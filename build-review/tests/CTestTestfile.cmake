# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_support[1]_include.cmake")
include("/root/repo/build-review/tests/test_isa[1]_include.cmake")
include("/root/repo/build-review/tests/test_isa16[1]_include.cmake")
include("/root/repo/build-review/tests/test_program[1]_include.cmake")
include("/root/repo/build-review/tests/test_mem[1]_include.cmake")
include("/root/repo/build-review/tests/test_cache[1]_include.cmake")
include("/root/repo/build-review/tests/test_cpu[1]_include.cmake")
include("/root/repo/build-review/tests/test_exceptions[1]_include.cmake")
include("/root/repo/build-review/tests/test_predecode[1]_include.cmake")
include("/root/repo/build-review/tests/test_compress[1]_include.cmake")
include("/root/repo/build-review/tests/test_huffman[1]_include.cmake")
include("/root/repo/build-review/tests/test_runtime[1]_include.cmake")
include("/root/repo/build-review/tests/test_profile[1]_include.cmake")
include("/root/repo/build-review/tests/test_placement[1]_include.cmake")
include("/root/repo/build-review/tests/test_proccache[1]_include.cmake")
include("/root/repo/build-review/tests/test_workload[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
include("/root/repo/build-review/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build-review/tests/test_report[1]_include.cmake")
include("/root/repo/build-review/tests/test_harness[1]_include.cmake")
