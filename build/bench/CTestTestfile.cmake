# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_table2 "/root/repo/build/bench/bench_table2")
set_tests_properties(smoke_bench_table2 PROPERTIES  ENVIRONMENT "RTDC_BENCH_SCALE=0.03" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table3 "/root/repo/build/bench/bench_table3")
set_tests_properties(smoke_bench_table3 PROPERTIES  ENVIRONMENT "RTDC_BENCH_SCALE=0.03" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_kirovski "/root/repo/build/bench/bench_kirovski")
set_tests_properties(smoke_bench_kirovski PROPERTIES  ENVIRONMENT "RTDC_BENCH_SCALE=0.03" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_thumb "/root/repo/build/bench/bench_thumb")
set_tests_properties(smoke_bench_thumb PROPERTIES  ENVIRONMENT "RTDC_BENCH_SCALE=0.03" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
